// Host-buffer MPI transfer path, shared by the trivial-staging baseline,
// host-memory benchmarks (Fig. 7/8b), and Open MPI's host-staged allreduce.
//
// Intra-node: shared-memory copy between the two processes.
// Inter-node: eager/rendezvous over the rank's closest NIC, with NIC and
// software per-message overheads from the system config.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/mem/copy_engine.hpp"
#include "gpucomm/runtime/rank.hpp"
#include "gpucomm/sim/engine.hpp"

namespace gpucomm {

class HostPath {
 public:
  /// `owner` names the mechanism this path serves in telemetry attribution
  /// ("staging", "mpi", ...); the string must outlive the HostPath.
  HostPath(Cluster& cluster, const std::vector<Rank>& ranks, int service_level,
           const char* owner = "host")
      : cluster_(cluster),
        ranks_(ranks),
        service_level_(service_level),
        owner_(owner),
        copy_(make_copy_engine(cluster)) {}

  /// One-way host-buffer transfer between two ranks. `efficiency` inflates
  /// the wire bytes (collective protocol overhead); 1.0 for plain p2p.
  void send(int src, int dst, Bytes bytes, double efficiency, EventFn done);

  /// Software+NIC overhead added before the wire for an inter-node message.
  SimTime pre_overhead(Bytes bytes) const;
  /// Receive-side overhead after delivery.
  SimTime post_overhead() const;

  /// Invoked when a wire transfer exhausts its fault-recovery retries (the
  /// send still completes so barriers drain); lets the owning mechanism mark
  /// its operation failed.
  void set_on_abandoned(std::function<void()> cb) { on_abandoned_ = std::move(cb); }

  const CopyEngine& copy() const { return copy_; }

 private:
  struct WireCtx;
  /// Post one attempt of a fault-aware wire transfer (host-mediated retry:
  /// the host notices the dead transfer, re-resolves the route and reposts).
  void post_wire(const std::shared_ptr<WireCtx>& ctx);
  void retry_wire(const std::shared_ptr<WireCtx>& ctx);

  Cluster& cluster_;
  const std::vector<Rank>& ranks_;
  int service_level_;
  const char* owner_;
  CopyEngine copy_;
  std::function<void()> on_abandoned_;
};

}  // namespace gpucomm
