// Fig. 12: impact of congestion on different service levels on Leonardo.
// An allreduce runs on one random allocation while a second job (alltoall
// or incast) runs concurrently on another; both ride the same service
// level (0 or 1). A switch-disjoint allocation is the control.
//
// Expected shape (paper): the incast collapses the allreduce goodput
// regardless of which (shared) service level the pair uses; the alltoall
// background is mild; with no shared switches there is no impact.
#include "bench_common.hpp"
#include "gpucomm/noise/background.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

constexpr Bytes kBuffer = 128_MiB;
constexpr int kAppNodes = 8;
constexpr int kBgNodes = 8;

double run_case(const SystemConfig& cfg, const char* interference, int service_level,
                bool disjoint_switches) {
  ClusterOptions copt;
  copt.nodes = kAppNodes + kBgNodes;
  // Shared case: both jobs in one Dragonfly+ group (they share the spines,
  // as random allocations on the production machine do). Control: each job
  // in its own set of groups, so no switch is shared (the paper's placement
  // experiment, Sec. VI-A).
  copt.placement =
      disjoint_switches ? Placement::kScatterGroups : Placement::kScatterSwitches;
  copt.enable_noise = false;  // isolate the co-scheduled-job effect
  copt.seed = 7;
  Cluster cluster(cfg, copt);

  std::vector<int> app_nodes, bg_nodes;
  if (disjoint_switches) {
    // Scatter-groups puts node i in group i: the halves share nothing.
    for (int n = 0; n < kAppNodes; ++n) app_nodes.push_back(n);
    for (int n = kAppNodes; n < kAppNodes + kBgNodes; ++n) bg_nodes.push_back(n);
  } else {
    Rng rng = cluster.rng().fork("fig12");
    auto split = split_random_nodes(cluster, kAppNodes, kBgNodes, rng);
    app_nodes = split.first;
    bg_nodes = split.second;
  }

  CommOptions opt;
  opt.env = cfg.tuned_env();
  opt.env.ccl_ib_sl = service_level;
  opt.service_level = service_level;

  std::unique_ptr<BackgroundJob> job;
  if (std::string(interference) != "none") {
    const TrafficPattern pattern = std::string(interference) == "incast"
                                       ? TrafficPattern::kIncast
                                       : TrafficPattern::kAlltoall;
    job = std::make_unique<BackgroundJob>(cluster, gpus_of_nodes(cluster, bg_nodes), pattern,
                                          8_MiB, service_level, /*window=*/3);
    job->start();
  }

  CclComm ccl(cluster, gpus_of_nodes(cluster, app_nodes), opt);
  const SimTime t = ccl.time_allreduce(kBuffer);
  if (job) job->stop();
  return goodput_gbps(kBuffer, t);
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 12", "Allreduce goodput under co-scheduled interference, per service level");

  const SystemConfig cfg = leonardo_config();
  Table t({"interference", "sl0_gbps", "sl1_gbps", "disjoint_switches_gbps"});
  for (const char* interference : {"none", "alltoall", "incast"}) {
    const double sl0 = run_case(cfg, interference, 0, false);
    const double sl1 = run_case(cfg, interference, 1, false);
    const double ctrl = run_case(cfg, interference, 0, true);
    t.add_row({interference, fmt(sl0, 1), fmt(sl1, 1), ctrl >= 0 ? fmt(ctrl, 1) : "n/a"});
  }
  emit(t, "fig12_leonardo_service_levels.csv");
  std::cout << "\n(the incast should collapse goodput on both service levels when switches\n"
               " are shared, and leave it intact on the disjoint allocation — Sec. VI-A)\n";
  return 0;
}
