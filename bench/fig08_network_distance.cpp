// Fig. 8: latency (1 B) and goodput (1 GiB) between GPUs at different
// network distances — same switch, same group, different groups — for GPU
// (a) and host (b) buffers, with box statistics over repeated iterations.
//
// Expected shape (paper): same-switch GPU latency 3.7-5.7 us band (Leonardo
// ~2 us); Alps/LUMI degrade deterministically (~+28% latency, ~1% goodput);
// Leonardo's mean latency doubles and its node goodput drops ~17% with long
// tails across groups — production network noise (Obs. 6).
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

Placement placement_for(NetworkDistance d) {
  switch (d) {
    case NetworkDistance::kSameSwitch: return Placement::kPacked;
    case NetworkDistance::kSameGroup: return Placement::kScatterSwitches;
    default: return Placement::kScatterGroups;
  }
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 8", "Latency and goodput vs network distance (MPI)");

  for (const SystemConfig& cfg : all_systems()) {
    std::cout << "\n--- " << cfg.name << " ---\n";
    Table t({"distance", "buffers", "lat_mean_us", "lat_med", "lat_p95", "lat_max",
             "node_gp_mean", "node_gp_med", "node_gp_min"});

    for (const NetworkDistance d : {NetworkDistance::kSameSwitch, NetworkDistance::kSameGroup,
                                    NetworkDistance::kDiffGroup}) {
      ClusterOptions copt;
      copt.nodes = 6;
      copt.placement = placement_for(d);
      Cluster cluster(cfg, copt);
      const auto nodes = find_node_pair(cluster, d);
      if (!nodes) {
        std::cout << "  (no " << to_string(d) << " pair available)\n";
        continue;
      }
      const std::vector<int> pair{nodes->first * cfg.gpus_per_node,
                                  nodes->second * cfg.gpus_per_node};
      for (const MemSpace space : {MemSpace::kDevice, MemSpace::kHost}) {
        CommOptions opt;
        opt.env = cfg.tuned_env();
        opt.space = space;
        MpiComm mpi(cluster, pair, opt);
        const Summary lat = run_iterations(cluster, RunConfig{100, 3}, [&] {
                              return SimTime{mpi.time_pingpong(0, 1, 1).ps / 2};
                            }).summary();
        const Summary gp = run_iterations(cluster, RunConfig{40, 2}, [&] {
                             return SimTime{mpi.time_pingpong(0, 1, 1_GiB).ps / 2};
                           }).goodput_summary(1_GiB);
        const double nics = cfg.nics_per_node;
        t.add_row({to_string(d), space == MemSpace::kDevice ? "gpu" : "host",
                   fmt(lat.mean), fmt(lat.median), fmt(lat.p95), fmt(lat.max),
                   fmt(gp.mean * nics, 0), fmt(gp.median * nics, 0), fmt(gp.min * nics, 0)});
      }
    }
    emit(t, "fig08_" + cfg.name + ".csv");
  }
  return 0;
}
