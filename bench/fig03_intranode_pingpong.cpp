// Fig. 3: GPU-GPU unidirectional transfer performance within one node, for
// the four mechanisms, across message sizes. Reports goodput (Gb/s) for the
// sweep and runtime (us) for small messages (the inner plots).
//
// Expected shape (paper): trivial staging ~1 order of magnitude below the
// rest; GPU-aware MPI the highest goodput on every system (Obs. 2); small
// messages: *CCL ~ MPI on Alps, MPI far ahead on Leonardo (GDRCopy) and
// LUMI (CPU->HBM memcpy) (Sec. III-C).
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 3", "Intra-node GPU-GPU ping-pong: goodput and small-message runtime");

  for (const SystemConfig& cfg : all_systems()) {
    Cluster cluster(cfg, {.nodes = 1});
    CommOptions opt;
    opt.env = cfg.tuned_env();

    std::cout << "\n--- " << cfg.name << " (nominal pair "
              << fmt(nominal_pair_goodput(cluster.graph(), cluster.gpu_device(0),
                                          cluster.gpu_device(1)) / 1e9, 0)
              << " Gb/s) ---\n";

    std::vector<Mechanism> mechanisms{Mechanism::kStaging, Mechanism::kCcl, Mechanism::kMpi};
    if (cfg.gpu.peer_access) mechanisms.insert(mechanisms.begin() + 1, Mechanism::kDeviceCopy);

    Table t({"size", "mechanism", "runtime_us", "goodput_gbps"});
    for (const Bytes b : size_sweep()) {
      for (const Mechanism m : mechanisms) {
        auto comm = make_comm(m, cluster, {0, 1}, opt);
        const RunConfig rc = run_config_for(b);
        const Samples s = run_iterations(cluster, rc, [&] {
          return SimTime{comm->time_pingpong(0, 1, b).ps / 2};
        });
        const Summary lat = s.summary();
        const Summary gp = s.goodput_summary(b);
        t.add_row({format_bytes(b), to_string(m), fmt(lat.median), fmt(gp.median, 1)});
      }
    }
    emit(t, "fig03_" + cfg.name + ".csv");
  }
  return 0;
}
