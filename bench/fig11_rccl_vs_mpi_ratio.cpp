// Fig. 11: ratio between RCCL and GPU-aware MPI goodput on LUMI for
// different collective sizes and node counts (alltoall and allreduce).
//
// Expected shape (paper): RCCL up to ~4x better on large vectors, MPI up to
// ~10x better on small ones, with the inversion around 32 KiB.
#include "bench_common.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

constexpr int kExactLimitNodes = 4;

double ratio_exact(const SystemConfig& cfg, CollKind kind, Bytes b, int nodes) {
  ClusterOptions copt;
  copt.nodes = nodes;
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = cfg.tuned_env();
  const auto gpus = first_n_gpus(cluster, nodes * cfg.gpus_per_node);
  CclComm ccl(cluster, gpus, opt);
  MpiComm mpi(cluster, gpus, opt);
  const SimTime tc = kind == CollKind::kAlltoall ? ccl.time_alltoall(b) : ccl.time_allreduce(b);
  const SimTime tm = kind == CollKind::kAlltoall ? mpi.time_alltoall(b) : mpi.time_allreduce(b);
  return tm.seconds() / tc.seconds();  // >1: RCCL faster
}

double ratio_model(const SystemConfig& cfg, CollKind kind, Bytes b, int nodes) {
  const int gpus = nodes * cfg.gpus_per_node;
  const auto run = [&](Library lib) {
    return kind == CollKind::kAlltoall ? alltoall_at_scale(cfg, lib, b, gpus)
                                       : allreduce_at_scale(cfg, lib, b, gpus);
  };
  const ScaleResult c = run(Library::kCcl);
  const ScaleResult m = run(Library::kMpi);
  if (c.stalled || m.goodput_gbps <= 0) return 0;
  return c.goodput_gbps / m.goodput_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 11", "RCCL / GPU-aware MPI goodput ratio on LUMI (>1 = RCCL faster)");

  const SystemConfig cfg = lumi_config();
  for (const CollKind kind : {CollKind::kAlltoall, CollKind::kAllreduce}) {
    std::cout << "\n--- " << (kind == CollKind::kAlltoall ? "alltoall" : "allreduce")
              << " ---\n";
    std::vector<std::string> headers{"size"};
    const std::vector<int> node_counts{2, 4, 8, 16, 32, 64};
    for (const int n : node_counts) headers.push_back(std::to_string(n) + "n");
    Table t(std::move(headers));

    for (Bytes b = 1_KiB; b <= 1_GiB; b *= 8) {
      std::vector<std::string> row{format_bytes(b)};
      for (const int nodes : node_counts) {
        const double r = nodes <= kExactLimitNodes ? ratio_exact(cfg, kind, b, nodes)
                                                   : ratio_model(cfg, kind, b, nodes);
        row.push_back(r > 0 ? fmt(r, 2) : "stall");
      }
      t.add_row(std::move(row));
    }
    emit(t, std::string("fig11_lumi_") +
                (kind == CollKind::kAlltoall ? "alltoall" : "allreduce") + ".csv");
  }
  std::cout << "\n(ratios < 1 at small sizes, > 1 at large sizes; the paper reports the\n"
               " inversion around 32 KiB, MPI ahead by up to 10x small, RCCL by up to 4x"
               " large)\n";
  return 0;
}
