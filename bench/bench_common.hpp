// Shared scaffolding for the per-figure benchmark binaries.
//
// Every binary regenerates one table/figure of the paper: it prints the
// series as an aligned table (annotated with the paper's qualitative
// expectation) and drops a CSV next to it, mirroring the artifact's data/
// layout. Binaries take no required arguments so `for b in build/bench/*`
// reproduces the full evaluation. Pass `--json <path>` (after calling
// bench::init) to additionally dump every emitted table as one
// machine-readable JSON document — the format BENCH_baseline.json uses to
// track the perf trajectory across commits.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/ccl/ccl_comm.hpp"
#include "gpucomm/comm/devcopy.hpp"
#include "gpucomm/comm/mpi/mpi_comm.hpp"
#include "gpucomm/comm/staging.hpp"
#include "gpucomm/harness/runner.hpp"
#include "gpucomm/harness/table.hpp"
#include "gpucomm/metrics/json.hpp"
#include "gpucomm/metrics/version.hpp"
#include "gpucomm/systems/registry.hpp"

namespace gpucomm::bench {

namespace detail {

/// Tables captured for --json, in emission order (name = CSV stem).
struct JsonCapture {
  std::string path;
  std::string benchmark;
  std::vector<std::pair<std::string, Table>> tables;
};

inline JsonCapture& capture() {
  static JsonCapture c;
  return c;
}

/// --jobs worker count; 0 = flag absent (bench picks its own default).
inline int& jobs_store() {
  static int n = 0;
  return n;
}

/// --full-machine; false = flag absent (sweeps stop at the paper ceiling).
inline bool& full_machine_store() {
  static bool on = false;
  return on;
}

/// --exact-point GPU count; 0 = flag absent (normal sweep).
inline int& exact_point_store() {
  static int n = 0;
  return n;
}

/// atexit hook: write every captured table as one JSON document. Runs after
/// main returns so it sees the full emission sequence without the benches
/// having to thread state through.
inline void write_json_capture() {
  JsonCapture& c = capture();
  if (c.path.empty()) return;
  std::ofstream os(c.path);
  if (!os) {
    std::cerr << "error: cannot write --json file '" << c.path << "'\n";
    return;
  }
  metrics::JsonWriter w(os);
  w.begin_object();
  w.kv("benchmark", c.benchmark);
  w.kv("version", metrics::build_version());
  // Host core count, so archived trend documents from different runner
  // generations stay interpretable (a 1.0x pool speedup on a 1-CPU runner
  // is expected, not a regression).
  w.kv("host_cpus", static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("tables").begin_array();
  for (const auto& [name, table] : c.tables) {
    w.begin_object();
    w.kv("name", name);
    w.key("headers").begin_array();
    for (const std::string& h : table.headers()) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : table.row_data()) {
      w.begin_array();
      for (const std::string& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "[json] " << c.path << "\n";
}

}  // namespace detail

/// Whether a bench's sweep decomposes into independent deterministic cells
/// (docs/PERFORMANCE.md). Benches whose iterations share one cluster must
/// stay kUnsupported so `--jobs` is a usage error, not a silent serial run.
enum class Parallel { kUnsupported, kCells };

/// Whether a bench is a scalability sweep that `--full-machine` can extend
/// past the paper's 4,096-GPU ceiling (8k/16k model-projection rows) and
/// `--exact-point <gpus>` can collapse to a single exact-sim measurement
/// (the CI scale-smoke entry point). Only fig09/fig10 declare kExtendable.
enum class Sweep { kPaper, kExtendable };

/// Worker count from `--jobs N`, or 0 when the flag was absent (the bench
/// picks its own default — typically 1 so plain invocations stay serial).
inline int jobs() { return detail::jobs_store(); }

/// True when `--full-machine` was passed: sweep to 16,384 GPUs instead of
/// stopping at the paper's measurement caps. Default CI stays fast.
inline bool full_machine() { return detail::full_machine_store(); }

/// GPU count from `--exact-point <gpus>`, or 0 when the flag was absent.
inline int exact_point() { return detail::exact_point_store(); }

/// Parse shared bench flags (call first in main). Recognizes
/// `--json <path>`, for benches declaring Parallel::kCells `--jobs <N>`,
/// and for benches declaring Sweep::kExtendable `--full-machine` and
/// `--exact-point <gpus>`. Strict in the cli::parse_cli style: an unknown
/// flag, a missing value, or a malformed number prints one line naming the
/// problem (plus the usage line) on stderr and exits with status 2, so a
/// typo does not silently run the full sweep.
inline void init(int argc, char** argv, Parallel parallel = Parallel::kUnsupported,
                 Sweep sweep = Sweep::kPaper) {
  detail::JsonCapture& c = detail::capture();
  c.benchmark =
      argc > 0 ? std::filesystem::path(argv[0]).filename().string() : "bench";
  const auto fail = [&](const std::string& message) {
    std::cerr << c.benchmark << ": " << message << "\n"
              << "usage: " << c.benchmark << " [--json <path>]"
              << (parallel == Parallel::kCells ? " [--jobs <N>]" : "")
              << (sweep == Sweep::kExtendable
                      ? " [--full-machine] [--exact-point <gpus>]"
                      : "")
              << "\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) fail("--json requires an output path");
      c.path = argv[++i];
    } else if (arg == "--full-machine") {
      if (sweep != Sweep::kExtendable) {
        fail("--full-machine is not supported by this bench (not a scalability sweep)");
      }
      detail::full_machine_store() = true;
    } else if (arg == "--exact-point") {
      if (sweep != Sweep::kExtendable) {
        fail("--exact-point is not supported by this bench (not a scalability sweep)");
      }
      if (i + 1 >= argc) fail("--exact-point requires a GPU count in [1, 16384]");
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 16384) {
        fail("--exact-point requires a GPU count in [1, 16384]");
      }
      detail::exact_point_store() = static_cast<int>(n);
    } else if (arg == "--jobs") {
      if (parallel != Parallel::kCells) {
        fail("--jobs is not supported by this bench (its sweep is not cell-decomposable)");
      }
      if (i + 1 >= argc) fail("--jobs requires a worker count in [1, 1024]");
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 1024) {
        fail("--jobs requires a worker count in [1, 1024]");
      }
      detail::jobs_store() = static_cast<int>(n);
    } else {
      fail("unknown flag '" + arg + "'");
    }
  }
  if (!c.path.empty()) std::atexit(detail::write_json_capture);
}

/// Directory for CSV output (artifact-style data/ folder). Override with
/// GPUCOMM_DATA_DIR; creation failures degrade to printing only.
inline std::string data_dir() {
  const char* env = std::getenv("GPUCOMM_DATA_DIR");
  std::string dir = env != nullptr ? env : "data";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  if (!detail::capture().path.empty()) {
    detail::capture().tables.emplace_back(
        std::filesystem::path(csv_name).stem().string(), table);
  }
  const std::string path = data_dir() + "/" + csv_name;
  table.write_csv(path);
  std::cout << "\n[csv] " << path << "\n";
  // Artifact parity: data/description.csv records every produced file
  // (the original artifact keeps run metadata the same way).
  std::ofstream desc(data_dir() + "/description.csv", std::ios::app);
  if (desc) desc << csv_name << "," << table.rows() << " rows\n";
}

inline void header(const std::string& figure, const std::string& description) {
  std::cout << "\n================================================================\n"
            << figure << " — " << description << "\n"
            << "================================================================\n";
}

/// Construct the requested mechanism over `gpus`.
inline std::unique_ptr<Communicator> make_comm(Mechanism m, Cluster& cluster,
                                               std::vector<int> gpus, CommOptions opt) {
  switch (m) {
    case Mechanism::kStaging:
      return std::make_unique<StagingComm>(cluster, std::move(gpus), std::move(opt));
    case Mechanism::kDeviceCopy:
      return std::make_unique<DeviceCopyComm>(cluster, std::move(gpus), std::move(opt));
    case Mechanism::kCcl:
      return std::make_unique<CclComm>(cluster, std::move(gpus), std::move(opt));
    case Mechanism::kMpi:
      return std::make_unique<MpiComm>(cluster, std::move(gpus), std::move(opt));
  }
  return nullptr;
}

/// The standard message-size sweep (powers of four from 1 B to 1 GiB).
inline std::vector<Bytes> size_sweep() {
  std::vector<Bytes> sizes;
  for (Bytes b = 1; b <= 1_GiB; b *= 4) sizes.push_back(b);
  if (sizes.back() != 1_GiB) sizes.push_back(1_GiB);
  return sizes;
}

}  // namespace gpucomm::bench
