// Fig. 13: impact of production congestion on scalability on Leonardo —
// a 2 MiB alltoall and a 1 GiB allreduce run on the default service level
// (exposed to real production noise) vs a non-default one (clean).
//
// Expected shape (paper): no difference at small GPU counts; at 1,024 GPUs
// the default service level loses ~20% on the alltoall and ~50% on the
// allreduce (Obs. 8).
#include "bench_common.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 13", "Leonardo: default vs non-default service level at scale");

  const SystemConfig cfg = leonardo_config();
  struct Workload {
    const char* label;
    CollKind kind;
    Bytes buffer;
  };
  for (const Workload w : {Workload{"alltoall-2MiB", CollKind::kAlltoall, 2_MiB},
                           Workload{"allreduce-1GiB", CollKind::kAllreduce, 1_GiB}}) {
    std::cout << "\n--- " << w.label << " (NCCL) ---\n";
    Table t({"gpus", "default_sl_gbps", "nondefault_sl_gbps", "noise_loss_pct"});
    for (int gpus = 8; gpus <= 1024; gpus *= 2) {
      ScaleOptions noisy, clean;
      noisy.default_sl_noise = true;
      clean.default_sl_noise = false;
      const auto run = [&](const ScaleOptions& o) {
        return w.kind == CollKind::kAlltoall
                   ? alltoall_at_scale(cfg, Library::kCcl, w.buffer, gpus, o)
                   : allreduce_at_scale(cfg, Library::kCcl, w.buffer, gpus, o);
      };
      const double g_noisy = run(noisy).goodput_gbps;
      const double g_clean = run(clean).goodput_gbps;
      const double loss = 100.0 * (1.0 - g_noisy / g_clean);
      t.add_row({std::to_string(gpus), fmt(g_noisy, 2), fmt(g_clean, 2), fmt(loss, 1)});
    }
    emit(t, std::string("fig13_leonardo_") + w.label + ".csv");
  }
  return 0;
}
