// Per-iteration timing traces — the capability the paper built its own
// benchmark for ("both [OSU and nccl-tests] do not report individual
// per-iteration timings, which are needed to assess network noise and
// performance variability", Sec. III-A). Records every iteration of a
// cross-group 1-byte ping-pong and a 64 MiB transfer on Leonardo, default vs
// non-default service level, and dumps the full traces as CSV.
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Noise trace", "Per-iteration latencies across Dragonfly+ groups (Leonardo)");

  const SystemConfig cfg = leonardo_config();
  ClusterOptions copt;
  copt.nodes = 4;
  copt.placement = Placement::kScatterGroups;
  Cluster cluster(cfg, copt);
  const auto pair_nodes = find_node_pair(cluster, NetworkDistance::kDiffGroup);
  if (!pair_nodes) return 1;
  const std::vector<int> pair{pair_nodes->first * cfg.gpus_per_node,
                              pair_nodes->second * cfg.gpus_per_node};

  const int iters = 300;
  Table trace({"iteration", "sl", "lat_1B_us", "goodput_64MiB_gbps"});
  Table summary({"sl", "lat_mean", "lat_p95", "lat_max", "gp_mean", "gp_min"});

  for (const int sl : {0, 1}) {
    CommOptions opt;
    opt.env = cfg.tuned_env();
    opt.env.ucx_ib_sl = sl;
    MpiComm mpi(cluster, pair, opt);
    const Samples lat = run_iterations(cluster, RunConfig{iters, 3}, [&] {
      return SimTime{mpi.time_pingpong(0, 1, 1).ps / 2};
    });
    const Samples bw = run_iterations(cluster, RunConfig{iters, 3}, [&] {
      return SimTime{mpi.time_pingpong(0, 1, 64_MiB).ps / 2};
    });
    for (int i = 0; i < iters; ++i) {
      const double gp = 64_MiB * 8.0 / (bw.us[i] * 1e-6) / 1e9;
      trace.add_row({std::to_string(i), std::to_string(sl), fmt(lat.us[i], 3), fmt(gp, 1)});
    }
    const Summary ls = lat.summary();
    const Summary gs = bw.goodput_summary(64_MiB);
    summary.add_row({std::to_string(sl), fmt(ls.mean), fmt(ls.p95), fmt(ls.max),
                     fmt(gs.mean, 1), fmt(gs.min, 1)});
  }

  summary.print(std::cout);
  trace.write_csv(data_dir() + "/noise_trace_leonardo.csv");
  std::cout << "\n[csv] " << data_dir() << "/noise_trace_leonardo.csv (" << 2 * iters
            << " per-iteration samples)\n"
            << "\n(SL 0 shows the production-noise tail the aggregate statistics hide;\n"
            << " SL 1 is flat — exactly why the paper records per-iteration timings)\n";
  return 0;
}
