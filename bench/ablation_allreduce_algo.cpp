// Allreduce algorithm-selection ablation. Fig. 11's sharp RCCL/MPI inversion
// "might be mitigated by tuning the allreduce algorithm selection"
// (Sec. V-E); this bench exposes the per-size choices each stack makes —
// *CCL: binomial double-tree small / hierarchical rings large; MPI:
// recursive doubling small / GPU-staged ring large — and where each
// algorithm's region boundary sits.
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

const char* ccl_algo(const SystemConfig& sys, Bytes buffer, int gpus, int gpus_per_node) {
  const int nodes = gpus / gpus_per_node;
  (void)sys;
  if (nodes > 1 && buffer <= 16_KiB && nodes >= 16) return "tree";
  return nodes > 1 ? "hier-ring" : "rings/rs-ag";
}

const char* mpi_algo(const SystemConfig& sys, Bytes buffer, int gpus) {
  if (sys.mpi.host_staged_allreduce) return "host-ring";
  if (buffer <= 64_KiB && (gpus & (gpus - 1)) == 0) return "recursive-dbl";
  return "gpu-staged-ring";
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Allreduce algorithm selection",
         "Per-size algorithm regions and the latency/bandwidth crossover");

  for (const SystemConfig& cfg : all_systems()) {
    const int nodes = 16;
    const int gpus = nodes * cfg.gpus_per_node;
    Cluster cluster(cfg, {.nodes = nodes});
    CommOptions opt;
    opt.env = cfg.tuned_env();
    const auto ranks = first_n_gpus(cluster, gpus);
    CclComm ccl(cluster, ranks, opt);
    MpiComm mpi(cluster, ranks, opt);

    std::cout << "\n--- " << cfg.name << " (" << gpus << " GPUs) ---\n";
    Table t({"size", "ccl_us", "ccl_algo", "mpi_us", "mpi_algo", "ccl/mpi"});
    for (Bytes b = 4_KiB; b <= 256_MiB; b *= 4) {
      const double tc = ccl.time_allreduce(b).micros();
      const double tm = mpi.time_allreduce(b).micros();
      t.add_row({format_bytes(b), fmt(tc, 1), ccl_algo(cfg, b, gpus, cfg.gpus_per_node),
                 fmt(tm, 1), mpi_algo(cfg, b, gpus), fmt(tm / tc, 2)});
    }
    emit(t, "ablation_allreduce_algo_" + cfg.name + ".csv");
  }
  std::cout << "\n(the algorithm switch points are where the runtime curves kink; the\n"
               " Fig. 11 inversion on LUMI sits at the boundary between MPI's\n"
               " recursive-doubling region and RCCL's bandwidth-bound ring region)\n";
  return 0;
}
