// Fig. 5: intra-node alltoall performance for the three systems, with the
// Sec. IV-A expected goodput (edge-forwarding-index analysis) as reference.
//
// Expected shape (paper): on Alps and LUMI *CCL wins at large sizes; on
// Leonardo MPI is slightly ahead; on LUMI MPI is up to 3x faster for small
// collectives; expected peaks 3.6 Tb/s / 2.4 Tb/s / 600 Gb/s.
#include "bench_common.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 5", "Intra-node alltoall goodput vs buffer size");

  for (const SystemConfig& cfg : all_systems()) {
    Cluster cluster(cfg, {.nodes = 1});
    CommOptions opt;
    opt.env = cfg.tuned_env();
    std::vector<int> gpus;
    for (int i = 0; i < cfg.gpus_per_node; ++i) gpus.push_back(i);

    std::cout << "\n--- " << cfg.name << " (expected peak "
              << fmt(intra_node_alltoall_peak(cfg) / 1e9, 0) << " Gb/s) ---\n";

    std::vector<Mechanism> mechanisms{Mechanism::kStaging, Mechanism::kCcl, Mechanism::kMpi};
    if (cfg.gpu.peer_access) mechanisms.insert(mechanisms.begin() + 1, Mechanism::kDeviceCopy);

    Table t({"size", "mechanism", "runtime_us", "goodput_gbps"});
    for (const Bytes b : size_sweep()) {
      if (b < static_cast<Bytes>(cfg.gpus_per_node)) continue;  // needs >= 1 B per pair
      for (const Mechanism m : mechanisms) {
        auto comm = make_comm(m, cluster, gpus, opt);
        const SimTime dur = comm->time_alltoall(b);
        t.add_row({format_bytes(b), to_string(m), fmt(dur.micros()),
                   fmt(goodput_gbps(b, dur), 1)});
      }
    }
    emit(t, "fig05_" + cfg.name + ".csv");
  }
  return 0;
}
