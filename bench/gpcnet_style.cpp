// GPCNet-style congestion test (Chunduri et al. [10], which the paper cites
// as the standard way to induce and measure network contention): measure a
// canary workload — 1 B p2p latency, 16 MiB p2p bandwidth, 8 MiB allreduce —
// on a few nodes while congestor jobs (incast + alltoall) hammer the rest of
// the allocation, and report the congestion impact factor (congested /
// isolated).
//
// Expected per Sec. VI: Slingshot systems (Alps, LUMI) stay close to 1x;
// Leonardo degrades visibly.
#include "bench_common.hpp"
#include "gpucomm/noise/background.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

struct Canary {
  double p2p_lat_us;
  double p2p_bw_gbps;
  double allreduce_us;
};

Canary run_canary(Cluster& cluster, const SystemConfig& cfg, const std::vector<int>& nodes) {
  CommOptions opt;
  opt.env = cfg.tuned_env();
  const auto gpus = gpus_of_nodes(cluster, nodes);
  MpiComm mpi(cluster, gpus, opt);
  CclComm ccl(cluster, gpus, opt);
  Canary c{};
  const int far = cfg.gpus_per_node;  // first rank of the second node
  const Summary lat = run_iterations(cluster, RunConfig{40, 2}, [&] {
                        return SimTime{mpi.time_pingpong(0, far, 1).ps / 2};
                      }).summary();
  const Summary bw = run_iterations(cluster, RunConfig{15, 2}, [&] {
                       return SimTime{mpi.time_pingpong(0, far, 16_MiB).ps / 2};
                     }).goodput_summary(16_MiB);
  const Summary ar = run_iterations(cluster, RunConfig{10, 2}, [&] {
                       return ccl.time_allreduce(8_MiB);
                     }).summary();
  c.p2p_lat_us = lat.mean;
  c.p2p_bw_gbps = bw.mean;
  c.allreduce_us = ar.mean;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("GPCNet-style", "Canary workload with and without congestors");

  Table t({"system", "metric", "isolated", "congested", "impact_factor"});
  for (const SystemConfig& cfg : all_systems()) {
    ClusterOptions copt;
    copt.nodes = 12;
    copt.placement = Placement::kScatterSwitches;  // one group, shared switches
    copt.enable_noise = false;  // congestors are explicit here
    Cluster cluster(cfg, copt);
    const std::vector<int> canary_nodes{0, 1, 2, 3};
    const std::vector<int> congestor_nodes{4, 5, 6, 7, 8, 9, 10, 11};

    const Canary quiet = run_canary(cluster, cfg, canary_nodes);

    const auto cgpus = gpus_of_nodes(cluster, congestor_nodes);
    const std::vector<int> half_a(cgpus.begin(), cgpus.begin() + cgpus.size() / 2);
    const std::vector<int> half_b(cgpus.begin() + cgpus.size() / 2, cgpus.end());
    BackgroundJob incast(cluster, half_a, TrafficPattern::kIncast, 8_MiB, 0, 3);
    BackgroundJob a2a(cluster, half_b, TrafficPattern::kAlltoall, 4_MiB, 0, 2);
    incast.start();
    a2a.start();
    const Canary noisy = run_canary(cluster, cfg, canary_nodes);
    incast.stop();
    a2a.stop();

    t.add_row({cfg.name, "p2p latency (us)", fmt(quiet.p2p_lat_us), fmt(noisy.p2p_lat_us),
               fmt(noisy.p2p_lat_us / quiet.p2p_lat_us)});
    t.add_row({cfg.name, "p2p bandwidth (Gb/s)", fmt(quiet.p2p_bw_gbps, 1),
               fmt(noisy.p2p_bw_gbps, 1), fmt(quiet.p2p_bw_gbps / noisy.p2p_bw_gbps)});
    t.add_row({cfg.name, "8 MiB allreduce (us)", fmt(quiet.allreduce_us, 1),
               fmt(noisy.allreduce_us, 1), fmt(noisy.allreduce_us / quiet.allreduce_us)});
  }
  emit(t, "gpcnet_style.csv");
  std::cout << "\n(impact factor 1.0 = perfect isolation; Slingshot's congestion control\n"
               " keeps victims near 1x while Leonardo's shared-SL fabric degrades — the\n"
               " explicit-congestor analogue of Sec. VI)\n";
  return 0;
}
