// Fig. 4: unidirectional goodput from GPU 0 on LUMI to every other GPU on
// the node, for a 1 GiB buffer, with the nominal (best-single-path) line.
//
// Expected shape (paper): staging flat across pairs; MPI and device copies
// ~70% of nominal on every pair; RCCL matches them on direct-link peers
// (1, 2, 6) but falls to less than half of MPI on two-hop peers (3, 4, 5, 7)
// — the hop-count bandwidth-estimation defect (Obs. 3).
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 4", "LUMI: goodput from GPU 0 to each other GCD, 1 GiB buffer");

  const SystemConfig cfg = lumi_config();
  const Bytes buffer = 1_GiB;
  Table t({"pair", "nominal_gbps", "staging", "devcopy", "rccl", "mpi"});

  for (int peer = 1; peer < cfg.gpus_per_node; ++peer) {
    Cluster cluster(cfg, {.nodes = 1});
    CommOptions opt;
    opt.env = cfg.tuned_env();
    const Bandwidth nominal = nominal_pair_goodput(cluster.graph(), cluster.gpu_device(0),
                                                   cluster.gpu_device(peer));
    std::vector<std::string> row{"0->" + std::to_string(peer), fmt(nominal / 1e9, 0)};
    for (const Mechanism m :
         {Mechanism::kStaging, Mechanism::kDeviceCopy, Mechanism::kCcl, Mechanism::kMpi}) {
      auto comm = make_comm(m, cluster, {0, peer}, opt);
      const SimTime t2 = comm->time_pingpong(0, 1, buffer);
      row.push_back(fmt(goodput_gbps(buffer, SimTime{t2.ps / 2}), 1));
    }
    t.add_row(std::move(row));
  }
  emit(t, "fig04_lumi_pairs.csv");
  return 0;
}
