// Fig. 6: intra-node allreduce performance for the three systems, with the
// Sec. IV-C expected goodput (tree on fully connected nodes, Rabenseifner
// over the LUMI ring decomposition) as reference.
//
// Expected shape (paper): *CCL beats MPI at every size on Alps and Leonardo;
// on LUMI MPI wins small, *CCL wins large; Leonardo Open MPI collapses to
// staging level (host-staged reduction, [34]); LUMI's measured/expected
// ratio is the closest of the three.
#include "bench_common.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 6", "Intra-node allreduce goodput vs buffer size");

  for (const SystemConfig& cfg : all_systems()) {
    Cluster cluster(cfg, {.nodes = 1});
    CommOptions opt;
    opt.env = cfg.tuned_env();
    std::vector<int> gpus;
    for (int i = 0; i < cfg.gpus_per_node; ++i) gpus.push_back(i);

    std::cout << "\n--- " << cfg.name << " (expected peak "
              << fmt(intra_node_allreduce_peak(cfg) / 1e9, 0) << " Gb/s) ---\n";

    std::vector<Mechanism> mechanisms{Mechanism::kStaging, Mechanism::kCcl, Mechanism::kMpi};
    if (cfg.gpu.peer_access) mechanisms.insert(mechanisms.begin() + 1, Mechanism::kDeviceCopy);

    Table t({"size", "mechanism", "runtime_us", "goodput_gbps"});
    for (const Bytes b : size_sweep()) {
      if (b < static_cast<Bytes>(cfg.gpus_per_node)) continue;
      for (const Mechanism m : mechanisms) {
        auto comm = make_comm(m, cluster, gpus, opt);
        const SimTime dur = comm->time_allreduce(b);
        t.add_row({format_bytes(b), to_string(m), fmt(dur.micros()),
                   fmt(goodput_gbps(b, dur), 1)});
      }
    }
    emit(t, "fig06_" + cfg.name + ".csv");
  }
  return 0;
}
