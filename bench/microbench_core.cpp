// google-benchmark microbenchmarks of the simulator's hot paths: event
// queue churn, engine dispatch, max-min fair allocation, and route
// computation. These guard the simulator's own performance (a 4,096-GPU
// collective replays millions of events).
#include <benchmark/benchmark.h>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/net/fairshare.hpp"
#include "gpucomm/sim/engine.hpp"
#include "gpucomm/systems/registry.hpp"
#include "gpucomm/topology/routing.hpp"

namespace gpucomm {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    std::uint64_t x = 42;
    for (int i = 0; i < n; ++i) {
      x = x * 6364136223846793005ull + 1;
      q.push(SimTime{static_cast<std::int64_t>(x % 1000000)}, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time.ps);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_EngineSelfScheduling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine e;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < n) e.after(nanoseconds(10), chain);
    };
    e.after(nanoseconds(10), chain);
    e.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineSelfScheduling)->Arg(10000);

void BM_MaxMinFairShare(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  FairshareProblem p;
  p.capacity.assign(256, gbps(200));
  std::uint64_t x = 7;
  for (int i = 0; i < flows; ++i) {
    std::vector<LinkId> route;
    for (int h = 0; h < 5; ++h) {
      x = x * 2862933555777941757ull + 3037000493ull;
      route.push_back(static_cast<LinkId>(x % 256));
    }
    std::sort(route.begin(), route.end());
    route.erase(std::unique(route.begin(), route.end()), route.end());
    p.flows.push_back(std::move(route));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(maxmin_fair_rates(p));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinFairShare)->Arg(64)->Arg(512)->Arg(4096);

void BM_ClusterConstruction(benchmark::State& state) {
  const SystemConfig cfg = leonardo_config();
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(cfg, {.nodes = nodes});
    benchmark::DoNotOptimize(cluster.total_gpus());
  }
}
BENCHMARK(BM_ClusterConstruction)->Arg(4)->Arg(64);

void BM_IntraNodeRoute(benchmark::State& state) {
  const SystemConfig cfg = lumi_config();
  Cluster cluster(cfg, {.nodes = 1});
  int pair = 0;
  for (auto _ : state) {
    const int a = pair % 8;
    const int b = (pair + 3) % 8;
    if (a != b) benchmark::DoNotOptimize(cluster.intra_node_route(a, b));
    ++pair;
  }
}
BENCHMARK(BM_IntraNodeRoute);

}  // namespace
}  // namespace gpucomm

BENCHMARK_MAIN();
