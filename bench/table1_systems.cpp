// Table I: main characteristics of the analyzed systems, printed from the
// encoded configurations (the simulator's ground truth).
#include "bench_common.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Table I", "Main characteristics of the analyzed systems");

  Table t({"property", "alps", "leonardo", "lumi"});
  const auto systems = all_systems();
  const auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const SystemConfig& s : systems) cells.push_back(getter(s));
    t.add_row(std::move(cells));
  };

  row("gpus/node", [](const SystemConfig& s) { return std::to_string(s.gpus_per_node); });
  row("nics/node", [](const SystemConfig& s) { return std::to_string(s.nics_per_node); });
  row("nic rate (Gb/s)", [](const SystemConfig& s) { return fmt(s.nic.rate / 1e9, 0); });
  row("nic bw per gpu (Gb/s)",
      [](const SystemConfig& s) { return fmt(s.nic_bw_per_gpu / 1e9, 0); });
  row("fabric", [](const SystemConfig& s) {
    return std::string(s.fabric.kind == FabricKind::kDragonfly ? "dragonfly" : "dragonfly+");
  });
  row("groups", [](const SystemConfig& s) {
    return std::to_string(s.fabric.kind == FabricKind::kDragonfly
                              ? s.fabric.dragonfly.groups
                              : s.fabric.dragonfly_plus.groups);
  });
  row("mpi flavor", [](const SystemConfig& s) {
    return std::string(s.mpi.flavor == MpiFlavor::kCrayMpich ? "cray-mpich" : "openmpi-ucx");
  });
  row("timer res (ns)",
      [](const SystemConfig& s) { return fmt(s.timer_resolution.nanos(), 0); });
  row("gpu peer access", [](const SystemConfig& s) {
    return std::string(s.gpu.peer_access ? "yes" : "no");
  });
  row("production noise", [](const SystemConfig& s) {
    return std::string(s.noise.production_noise ? "yes" : "no");
  });
  row("intra pair bw (Gb/s)", [](const SystemConfig& s) {
    Graph g;
    const NodeDevices node = build_node(g, s.arch, 0);
    return fmt(nominal_pair_goodput(g, node.gpus[0], node.gpus[1]) / 1e9, 0);
  });
  row("expected a2a (Gb/s)",
      [](const SystemConfig& s) { return fmt(intra_node_alltoall_peak(s) / 1e9, 0); });
  row("expected ar (Gb/s)",
      [](const SystemConfig& s) { return fmt(intra_node_allreduce_peak(s) / 1e9, 0); });

  emit(t, "table1_systems.csv");
  return 0;
}
