// Fig. 10: 1 GiB allreduce scalability up to 4,096 GPUs, *CCL vs GPU-aware
// MPI.
//
// Expected shape (paper): *CCL above MPI everywhere; Leonardo's MPI
// (host-staged allreduce) is dramatically low and flat; *CCL shows a sharp
// drop from 256 to 512 GPUs on Alps and LUMI (Sec. V-D).
//
// `--full-machine` extends every system's sweep to 16,384 GPUs; rows past a
// system's paper measurement cap are model projections. `--exact-point
// <gpus>` runs a single LUMI GPU-aware-MPI allreduce point through the
// exact flow simulation (the fig09 variant is the one CI smoke-tests).
#include <chrono>

#include "bench_common.hpp"
#include "gpucomm/harness/parallel.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {
constexpr Bytes kBuffer = 1_GiB;
constexpr int kExactLimitGpus = 32;  // allreduce rounds are costlier to simulate

int system_cap(const SystemConfig& cfg, Library lib) {
  if (cfg.name == "leonardo") return 1024;
  if (cfg.name == "alps") return lib == Library::kMpi ? 2048 : 4096;
  return 4096;
}

double exact_goodput(const SystemConfig& cfg, Library lib, int gpus) {
  ClusterOptions copt;
  copt.nodes = gpus / cfg.gpus_per_node;
  // Production-like allocation: jobs spread over many switches (Sec. III-A).
  copt.placement = Placement::kScatterSwitches;
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = cfg.tuned_env();
  auto comm = make_comm(lib == Library::kCcl ? Mechanism::kCcl : Mechanism::kMpi, cluster,
                        first_n_gpus(cluster, gpus), opt);
  return goodput_gbps(kBuffer, comm->time_allreduce(kBuffer));
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv, gpucomm::bench::Parallel::kCells,
                       gpucomm::bench::Sweep::kExtendable);
  header("Fig. 10", "1 GiB allreduce scalability (per-GPU goodput, Gb/s)");

  if (const int gpus = gpucomm::bench::exact_point(); gpus > 0) {
    const SystemConfig cfg = system_by_name("lumi");
    if (gpus % cfg.gpus_per_node != 0) {
      std::cerr << "fig10: --exact-point must be a multiple of " << cfg.gpus_per_node
                << " (LUMI GPUs per node)\n";
      return 2;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const double goodput = exact_goodput(cfg, Library::kMpi, gpus);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    Table t({"gpus", "library", "goodput_gbps", "source", "wall_s"});
    t.add_row({std::to_string(gpus), to_string(Library::kMpi), fmt(goodput, 2),
               "exact-sim", fmt(wall_s, 1)});
    emit(t, "fig10_exact_point.csv");
    return 0;
  }

  // Each exact-sim point is an independent deterministic simulation: collect
  // them as cells, run on the --jobs worker pool (serial when absent), and
  // consume in the same canonical order below — the tables are byte-identical
  // for any worker count (docs/PERFORMANCE.md).
  const std::vector<SystemConfig> systems = all_systems();
  struct Cell {
    const SystemConfig* cfg;
    Library lib;
    int gpus;
  };
  std::vector<Cell> cells;
  for (const SystemConfig& cfg : systems) {
    for (int gpus = cfg.gpus_per_node; gpus <= kExactLimitGpus; gpus *= 2) {
      for (const Library lib : {Library::kCcl, Library::kMpi}) {
        if (gpus <= system_cap(cfg, lib)) cells.push_back({&cfg, lib, gpus});
      }
    }
  }
  std::vector<double> exact(cells.size());
  run_cells(std::max(1, gpucomm::bench::jobs()), cells.size(), [&](std::size_t i) {
    exact[i] = exact_goodput(*cells[i].cfg, cells[i].lib, cells[i].gpus);
  });

  std::size_t next_cell = 0;
  for (const SystemConfig& cfg : systems) {
    std::cout << "\n--- " << cfg.name << " ---\n";
    Table t({"gpus", "library", "goodput_gbps", "source"});
    const int sweep_cap = gpucomm::bench::full_machine() ? 16384 : 4096;
    for (int gpus = cfg.gpus_per_node; gpus <= sweep_cap; gpus *= 2) {
      for (const Library lib : {Library::kCcl, Library::kMpi}) {
        // Past a system's paper measurement cap only --full-machine sweeps
        // on, and those rows are marked as projections.
        const bool beyond_cap = gpus > system_cap(cfg, lib);
        if (beyond_cap && !gpucomm::bench::full_machine()) continue;
        if (gpus <= kExactLimitGpus) {
          t.add_row({std::to_string(gpus), to_string(lib), fmt(exact[next_cell++], 2),
                     "exact-sim"});
        } else {
          const ScaleResult r = allreduce_at_scale(cfg, lib, kBuffer, gpus);
          t.add_row({std::to_string(gpus), to_string(lib), fmt(r.goodput_gbps, 2),
                     beyond_cap ? "model (projection)" : "model"});
        }
      }
    }
    emit(t, "fig10_" + cfg.name + ".csv");
  }
  return 0;
}
