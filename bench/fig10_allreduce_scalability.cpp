// Fig. 10: 1 GiB allreduce scalability up to 4,096 GPUs, *CCL vs GPU-aware
// MPI.
//
// Expected shape (paper): *CCL above MPI everywhere; Leonardo's MPI
// (host-staged allreduce) is dramatically low and flat; *CCL shows a sharp
// drop from 256 to 512 GPUs on Alps and LUMI (Sec. V-D).
#include "bench_common.hpp"
#include "gpucomm/harness/parallel.hpp"
#include "gpucomm/scale/scale_model.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {
constexpr Bytes kBuffer = 1_GiB;
constexpr int kExactLimitGpus = 32;  // allreduce rounds are costlier to simulate

int system_cap(const SystemConfig& cfg, Library lib) {
  if (cfg.name == "leonardo") return 1024;
  if (cfg.name == "alps") return lib == Library::kMpi ? 2048 : 4096;
  return 4096;
}

double exact_goodput(const SystemConfig& cfg, Library lib, int gpus) {
  ClusterOptions copt;
  copt.nodes = gpus / cfg.gpus_per_node;
  // Production-like allocation: jobs spread over many switches (Sec. III-A).
  copt.placement = Placement::kScatterSwitches;
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = cfg.tuned_env();
  auto comm = make_comm(lib == Library::kCcl ? Mechanism::kCcl : Mechanism::kMpi, cluster,
                        first_n_gpus(cluster, gpus), opt);
  return goodput_gbps(kBuffer, comm->time_allreduce(kBuffer));
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv, gpucomm::bench::Parallel::kCells);
  header("Fig. 10", "1 GiB allreduce scalability (per-GPU goodput, Gb/s)");

  // Each exact-sim point is an independent deterministic simulation: collect
  // them as cells, run on the --jobs worker pool (serial when absent), and
  // consume in the same canonical order below — the tables are byte-identical
  // for any worker count (docs/PERFORMANCE.md).
  const std::vector<SystemConfig> systems = all_systems();
  struct Cell {
    const SystemConfig* cfg;
    Library lib;
    int gpus;
  };
  std::vector<Cell> cells;
  for (const SystemConfig& cfg : systems) {
    for (int gpus = cfg.gpus_per_node; gpus <= kExactLimitGpus; gpus *= 2) {
      for (const Library lib : {Library::kCcl, Library::kMpi}) {
        if (gpus <= system_cap(cfg, lib)) cells.push_back({&cfg, lib, gpus});
      }
    }
  }
  std::vector<double> exact(cells.size());
  run_cells(std::max(1, gpucomm::bench::jobs()), cells.size(), [&](std::size_t i) {
    exact[i] = exact_goodput(*cells[i].cfg, cells[i].lib, cells[i].gpus);
  });

  std::size_t next_cell = 0;
  for (const SystemConfig& cfg : systems) {
    std::cout << "\n--- " << cfg.name << " ---\n";
    Table t({"gpus", "library", "goodput_gbps", "source"});
    for (int gpus = cfg.gpus_per_node; gpus <= 4096; gpus *= 2) {
      for (const Library lib : {Library::kCcl, Library::kMpi}) {
        if (gpus > system_cap(cfg, lib)) continue;
        if (gpus <= kExactLimitGpus) {
          t.add_row({std::to_string(gpus), to_string(lib), fmt(exact[next_cell++], 2),
                     "exact-sim"});
        } else {
          const ScaleResult r = allreduce_at_scale(cfg, lib, kBuffer, gpus);
          t.add_row({std::to_string(gpus), to_string(lib), fmt(r.goodput_gbps, 2), "model"});
        }
      }
    }
    emit(t, "fig10_" + cfg.name + ".csv");
  }
  return 0;
}
