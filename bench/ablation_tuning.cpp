// Observation 1 ablations: each Sec. III-B tuning knob toggled in isolation,
// with the measured improvement factor next to the paper's reported one.
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

double mpi_p2p_us(Cluster& cluster, const SoftwareEnv& env, Bytes b) {
  CommOptions opt;
  opt.env = env;
  MpiComm mpi(cluster, {0, 1}, opt);
  return mpi.time_pingpong(0, 1, b).micros();
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Obs. 1 ablations", "Per-knob tuning impact (untuned_time / tuned_time)");

  Table t({"system", "knob", "workload", "factor", "paper"});

  {  // MPICH_GPU_IPC_THRESHOLD=1 (Alps)
    const SystemConfig cfg = alps_config();
    Cluster cluster(cfg, {.nodes = 1});
    SoftwareEnv tuned = cfg.tuned_env();
    SoftwareEnv off = tuned;
    off.mpich_gpu_ipc_threshold = 0;
    t.add_row({"alps", "MPICH_GPU_IPC_THRESHOLD=1", "p2p 2KiB",
               fmt(mpi_p2p_us(cluster, off, 2_KiB) / mpi_p2p_us(cluster, tuned, 2_KiB)),
               "~2x (<4KiB)"});
  }
  {  // GDRCopy (Leonardo)
    const SystemConfig cfg = leonardo_config();
    Cluster cluster(cfg, {.nodes = 1});
    SoftwareEnv tuned = cfg.tuned_env();
    SoftwareEnv off = tuned;
    off.gdrcopy_loaded = false;
    t.add_row({"leonardo", "GDRCopy via LD_LIBRARY_PATH", "p2p 1B",
               fmt(mpi_p2p_us(cluster, off, 1) / mpi_p2p_us(cluster, tuned, 1)),
               "up to 6x"});
  }
  {  // HSA_ENABLE_SDMA=0 (LUMI)
    const SystemConfig cfg = lumi_config();
    Cluster cluster(cfg, {.nodes = 1});
    SoftwareEnv tuned = cfg.tuned_env();
    SoftwareEnv on = tuned;
    on.hsa_enable_sdma = true;
    t.add_row({"lumi", "HSA_ENABLE_SDMA=0", "p2p 1GiB",
               fmt(mpi_p2p_us(cluster, on, 1_GiB) / mpi_p2p_us(cluster, tuned, 1_GiB)),
               "up to 3x"});
  }
  {  // NCCL_NCHANNELS_PER_PEER=32 (LUMI)
    const SystemConfig cfg = lumi_config();
    Cluster cluster(cfg, {.nodes = 1});
    CommOptions tuned, def;
    tuned.env = cfg.tuned_env();
    def.env = tuned.env;
    def.env.ccl_nchannels_per_peer = -1;
    CclComm ct(cluster, {0, 1}, tuned);
    CclComm cd(cluster, {0, 1}, def);
    t.add_row({"lumi", "NCCL_NCHANNELS_PER_PEER=32", "p2p 1GiB",
               fmt(cd.time_pingpong(0, 1, 1_GiB).seconds() /
                   ct.time_pingpong(0, 1, 1_GiB).seconds()),
               "3.5x"});
  }
  {  // NCCL_NET_GDR_LEVEL=3 (Alps, 2 nodes)
    const SystemConfig cfg = alps_config();
    Cluster cluster(cfg, {.nodes = 2});
    CommOptions tuned, def;
    tuned.env = cfg.tuned_env();
    def.env = tuned.env;
    def.env.ccl_net_gdr_level = -1;
    const auto gpus = first_n_gpus(cluster, 8);
    CclComm ct(cluster, gpus, tuned);
    CclComm cd(cluster, gpus, def);
    t.add_row({"alps", "NCCL_NET_GDR_LEVEL=3", "alltoall 16MiB",
               fmt(cd.time_alltoall(16_MiB).seconds() / ct.time_alltoall(16_MiB).seconds()),
               "~2x"});
  }
  {  // NCCL_IGNORE_CPU_AFFINITY=1 (LUMI, 2 nodes)
    const SystemConfig cfg = lumi_config();
    Cluster cluster(cfg, {.nodes = 2});
    CommOptions tuned, def;
    tuned.env = cfg.tuned_env();
    def.env = tuned.env;
    def.env.ccl_ignore_cpu_affinity = false;
    const auto gpus = first_n_gpus(cluster, 16);
    CclComm ct(cluster, gpus, tuned);
    CclComm cd(cluster, gpus, def);
    t.add_row({"lumi", "NCCL_IGNORE_CPU_AFFINITY=1", "allreduce 256MiB",
               fmt(cd.time_allreduce(256_MiB).seconds() /
                   ct.time_allreduce(256_MiB).seconds()),
               "up to 6x"});
    t.add_row({"lumi", "NCCL_IGNORE_CPU_AFFINITY=1", "alltoall 16MiB",
               fmt(cd.time_alltoall(16_MiB).seconds() / ct.time_alltoall(16_MiB).seconds()),
               "up to 1.6x"});
  }
  {  // MPICH_GPU_ALLREDUCE_BLK_SIZE=128MiB (Alps)
    const SystemConfig cfg = alps_config();
    Cluster cluster(cfg, {.nodes = 1});
    CommOptions tuned, def;
    tuned.env = cfg.tuned_env();
    def.env = tuned.env;
    def.env.mpich_gpu_allreduce_blk = 32_MiB;
    const auto gpus = first_n_gpus(cluster, 4);
    MpiComm mt(cluster, gpus, tuned);
    MpiComm md(cluster, gpus, def);
    t.add_row({"alps", "MPICH_GPU_ALLREDUCE_BLK_SIZE=128M", "allreduce 1GiB",
               fmt(md.time_allreduce(1_GiB).seconds() / mt.time_allreduce(1_GiB).seconds()),
               "+50%"});
  }

  emit(t, "ablation_tuning.csv");
  return 0;
}
