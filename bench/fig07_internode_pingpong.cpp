// Fig. 7: inter-node unidirectional goodput (per node) and latency between
// two nodes, one process per GPU/NIC, for MPI (host and GPU buffers) and
// *CCL (GPU buffers).
//
// Expected shape (paper): MPI highest goodput and lowest latency regardless
// of buffer location; *CCL up to one order of magnitude slower on small
// transfers and up to 3x on large ones (Obs. 5); node goodput approaches
// 4 x NIC rate (800 / 400 / 800 Gb/s).
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fig. 7", "Inter-node ping-pong: per-node goodput and latency");

  for (const SystemConfig& cfg : all_systems()) {
    std::cout << "\n--- " << cfg.name << " (peak node bw "
              << fmt(cfg.nics_per_node * cfg.nic.rate / 1e9, 0) << " Gb/s) ---\n";
    Table t({"size_per_nic", "stack", "latency_us", "node_goodput_gbps"});

    struct Config {
      const char* label;
      Mechanism mech;
      MemSpace space;
    };
    const std::vector<Config> stacks{
        {"mpi-host", Mechanism::kMpi, MemSpace::kHost},
        {"mpi-gpu", Mechanism::kMpi, MemSpace::kDevice},
        {"ccl-gpu", Mechanism::kCcl, MemSpace::kDevice},
    };

    for (const Bytes b : size_sweep()) {
      for (const auto& stack : stacks) {
        Cluster cluster(cfg, {.nodes = 2});
        CommOptions opt;
        opt.env = cfg.tuned_env();
        opt.space = stack.space;
        // One rank per GPU; the measured pair rides one NIC, and all NICs
        // carry a pair concurrently — per-node goodput sums them.
        std::vector<int> gpus = first_n_gpus(cluster, 2 * cfg.gpus_per_node);
        auto comm = make_comm(stack.mech, cluster, gpus, opt);
        // Run the NIC-count worth of concurrent ping-pongs: ranks i <-> i+n.
        // For reporting we time one representative pair and scale by NICs
        // (pairs use disjoint NICs, so they do not contend).
        const SimTime t2 = comm->time_pingpong(0, cfg.gpus_per_node, b);
        const double lat_us = t2.micros() / 2;
        const double per_pair = goodput_gbps(b, SimTime{t2.ps / 2});
        const double node = per_pair * cfg.nics_per_node;
        t.add_row({format_bytes(b), stack.label, fmt(lat_us), fmt(node, 1)});
      }
    }
    emit(t, "fig07_" + cfg.name + ".csv");
  }
  return 0;
}
