// Sec. VIII what-if: the paper argues its conclusions transfer to fat-tree
// systems, with (i) slightly higher latency from the larger diameter and
// (ii) different routing/noise characteristics. This bench swaps Leonardo's
// Dragonfly+ for a three-level fat tree and re-runs the distance and
// library-comparison probes.
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

SystemConfig leonardo_fat_tree() {
  SystemConfig cfg = leonardo_config();
  cfg.name = "leonardo-fattree";
  cfg.fabric.kind = FabricKind::kFatTree;
  cfg.fabric.fat_tree.pods = 8;
  cfg.fabric.fat_tree.edges_per_pod = 8;
  cfg.fabric.fat_tree.aggs_per_pod = 8;
  cfg.fabric.fat_tree.cores = 64;
  cfg.noise.production_noise = false;  // topology comparison, drained fabric
  return cfg;
}

SystemConfig leonardo_quiet() {
  SystemConfig cfg = leonardo_config();
  cfg.noise.production_noise = false;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Sec. VIII", "Leonardo on a fat tree vs its Dragonfly+ (drained fabric)");

  Table t({"fabric", "same_switch_lat_us", "cross_lat_us", "cross_gp_gbps",
           "allreduce64_gbps", "ccl_over_mpi_a2a"});
  for (const bool fat : {false, true}) {
    const SystemConfig cfg = fat ? leonardo_fat_tree() : leonardo_quiet();
    CommOptions opt;
    opt.env = cfg.tuned_env();

    // Latency at both extremes of the distance axis.
    Cluster near(cfg, {.nodes = 2});
    MpiComm mpi_near(near, {0, 4}, opt);
    const double lat_near = mpi_near.time_pingpong(0, 1, 1).micros() / 2;

    ClusterOptions spread;
    spread.nodes = 4;
    spread.placement = Placement::kScatterGroups;
    Cluster far(cfg, spread);
    MpiComm mpi_far(far, {0, 4}, opt);
    const double lat_far = mpi_far.time_pingpong(0, 1, 1).micros() / 2;
    const double gp_far =
        goodput_gbps(1_GiB, SimTime{mpi_far.time_pingpong(0, 1, 1_GiB).ps / 2});

    // Library comparison carries over: *CCL still wins the collectives.
    Cluster coll(cfg, {.nodes = 16, .placement = Placement::kScatterSwitches});
    const auto gpus = first_n_gpus(coll, 64);
    CclComm ccl(coll, gpus, opt);
    MpiComm mpi(coll, gpus, opt);
    const double ar = goodput_gbps(1_GiB, ccl.time_allreduce(1_GiB));
    const double ratio =
        mpi.time_alltoall(2_MiB).seconds() / ccl.time_alltoall(2_MiB).seconds();

    t.add_row({cfg.name, fmt(lat_near), fmt(lat_far), fmt(gp_far, 1), fmt(ar, 1),
               fmt(ratio, 2)});
  }
  emit(t, "discussion_fat_tree.csv");
  std::cout << "\n(expected per Sec. VIII: slightly higher cross latency on the fat tree —\n"
               " 5 switch hops vs 4 — with the library conclusions unchanged)\n";
  return 0;
}
