// Wall-clock tracking for the scenario server (not a paper figure).
//
// Drives serve_loop in-process with a 1,000-query near-identical sweep
// (same scenario, single-size sweeps stepping 1 KiB apart) twice over one
// cache set: the first pass is all cold misses, the second all response-
// cache hits. The two response streams must be byte-identical — that is
// the server's determinism contract — and the tracked quantity is the
// warm/cold queries-per-second ratio (the tentpole target is >= 10x).
// Emitted through --json so CI can archive the trend (BENCH_perf.json —
// informational, no gate).
#include <chrono>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "gpucomm/serve/scenario.hpp"
#include "gpucomm/serve/server.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

constexpr int kQueries = 1000;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string query_stream() {
  std::ostringstream os;
  for (int i = 0; i < kQueries; ++i) {
    // Near-identical: only the (single-size) sweep bounds differ, so the
    // cold pass misses every response but shares the topology snapshot.
    const Bytes b = 4096 + static_cast<Bytes>(i) * 1024;
    os << "{\"id\":" << i << ",\"op\":\"pingpong\",\"mechanism\":\"mpi\",\"gpus\":2,"
       << "\"min\":" << b << ",\"max\":" << b << ",\"iters\":5}\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("perf_server", "scenario server: queries/sec cold vs warm cache");

  const std::string queries = query_stream();
  serve::ServerCaches caches(256u << 20);
  serve::ServeOptions opts;
  opts.jobs = 1;
  opts.caches = &caches;

  std::istringstream cold_in(queries);
  std::ostringstream cold_out;
  const auto t_cold = std::chrono::steady_clock::now();
  const std::size_t cold_answered = serve::serve_loop(cold_in, cold_out, opts).answered;
  const double cold_ms = ms_since(t_cold);

  std::istringstream warm_in(queries);
  std::ostringstream warm_out;
  const auto t_warm = std::chrono::steady_clock::now();
  const std::size_t warm_answered = serve::serve_loop(warm_in, warm_out, opts).answered;
  const double warm_ms = ms_since(t_warm);

  if (cold_answered != kQueries || warm_answered != kQueries) {
    std::cerr << "error: expected " << kQueries << " answers per pass\n";
    return 1;
  }
  if (warm_out.str() != cold_out.str()) {
    std::cerr << "error: warm responses diverged from cold responses\n";
    return 1;
  }
  const auto hits = caches.responses.stats().hits;
  if (hits < kQueries) {
    std::cerr << "error: warm pass expected " << kQueries << " response hits, saw "
              << hits << "\n";
    return 1;
  }

  Table t({"pass", "queries", "wall_ms", "queries_per_s", "speedup"});
  t.add_row({"cold", std::to_string(kQueries), fmt(cold_ms, 0),
             fmt(1000.0 * kQueries / cold_ms, 0), "1.00"});
  t.add_row({"warm", std::to_string(kQueries), fmt(warm_ms, 0),
             fmt(1000.0 * kQueries / warm_ms, 0), fmt(cold_ms / warm_ms, 2)});
  emit(t, "perf_server.csv");
  std::cout << "(responses byte-identical across passes; "
            << hits << " response-cache hits)\n";
  return 0;
}
