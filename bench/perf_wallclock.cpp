// Wall-clock performance tracking (not a paper figure).
//
// Two sections, both emitted through --json so CI can archive the trend
// (BENCH_perf.json — informational, no gate):
//
//  1. solver: the progressive-filling allocator on randomized problems,
//     reference maxmin_fair_rates vs the FairshareSolver fast path used by
//     Network. The two must produce bit-identical rates (checked here every
//     repetition; the bench aborts on any mismatch).
//
//  2. end_to_end: a fig10-style sweep of exact-sim allreduce cells
//     (system x library x scale x rep), run serially and on the --jobs
//     worker pool (default 4 when the flag is absent). Cell results must
//     match between the two runs bit-for-bit.
//
//  3. incremental: a flow-event replay over a regional fabric (up to 16,384
//     links and 2^20 flows), driven through the Network's full-resolve
//     reference mode (the PR 6 cost model: every component re-solved on
//     every event) and the incremental/partitioned mode. Every completion
//     timestamp must match bit-for-bit between the modes (a 1-ulp rate divergence shifts a picosecond deadline); the
//     wall-clock ratio is the tracked speedup and must stay >= 2x on the
//     largest row.
//
// Wall-clock numbers vary with the host; the speedup columns are the
// quantity tracked across commits.
#include <algorithm>
#include <chrono>
#include <limits>
#include <random>
#include <thread>

#include "bench_common.hpp"
#include "gpucomm/harness/parallel.hpp"
#include "gpucomm/net/fairshare.hpp"
#include "gpucomm/net/network.hpp"
#include "gpucomm/sim/random.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- section 1: solver ------------------------------------------------------

/// A randomized allocation problem shaped like the ones Network produces:
/// short routes over a shared fabric, a minority of capped flows, a few
/// empty routes (pure local transfers) and zero-capacity (down) links.
FairshareProblem random_problem(std::size_t links, std::size_t flows,
                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cap_dist(25e9, 400e9);
  std::uniform_int_distribution<std::size_t> link_dist(0, links - 1);
  std::uniform_int_distribution<int> len_dist(2, 8);
  std::uniform_int_distribution<int> pct(0, 99);

  FairshareProblem p;
  p.capacity.resize(links);
  for (std::size_t l = 0; l < links; ++l) {
    p.capacity[l] = pct(rng) < 2 ? 0.0 : cap_dist(rng);
  }
  p.flows.resize(flows);
  p.caps.assign(flows, std::numeric_limits<Bandwidth>::infinity());
  for (std::size_t i = 0; i < flows; ++i) {
    if (pct(rng) < 3) continue;  // empty route: no network constraint
    const int len = len_dist(rng);
    std::vector<LinkId>& route = p.flows[i];
    for (int k = 0; k < len; ++k) {
      const LinkId l = static_cast<LinkId>(link_dist(rng));
      if (std::find(route.begin(), route.end(), l) == route.end()) route.push_back(l);
    }
    if (pct(rng) < 20) p.caps[i] = cap_dist(rng) / 4;
  }
  return p;
}

void solver_section(Table& t) {
  struct Scale {
    std::size_t links, flows;
    int reps;
  };
  for (const Scale s : {Scale{256, 512, 400}, Scale{1024, 4096, 60}, Scale{4096, 16384, 15}}) {
    const FairshareProblem p = random_problem(s.links, s.flows, /*seed=*/0xf00d + s.flows);
    std::vector<const Route*> routes;
    routes.reserve(p.flows.size());
    for (const std::vector<LinkId>& r : p.flows) routes.push_back(&r);

    const std::vector<Bandwidth> want = maxmin_fair_rates(p);
    FairshareSolver solver;

    const auto t_ref = std::chrono::steady_clock::now();
    for (int r = 0; r < s.reps; ++r) {
      const std::vector<Bandwidth> got = maxmin_fair_rates(p);
      if (got != want) {
        std::cerr << "error: reference solver is not deterministic\n";
        std::exit(1);
      }
    }
    const double ref_ms = ms_since(t_ref);

    const auto t_fast = std::chrono::steady_clock::now();
    for (int r = 0; r < s.reps; ++r) {
      const std::vector<Bandwidth>& got = solver.solve(p.capacity, routes, p.caps);
      if (got != want) {
        std::cerr << "error: FairshareSolver diverged from maxmin_fair_rates\n";
        std::exit(1);
      }
    }
    const double fast_ms = ms_since(t_fast);

    t.add_row({std::to_string(s.links), std::to_string(s.flows), std::to_string(s.reps),
               fmt(ref_ms, 1), fmt(fast_ms, 1), fmt(ref_ms / fast_ms, 2)});
  }
}

// --- section 2: end_to_end --------------------------------------------------

constexpr Bytes kBuffer = 64_MiB;
constexpr int kExactLimitGpus = 32;

struct Cell {
  SystemConfig cfg;
  Mechanism mech;
  int gpus;
  std::uint64_t seed;
};

double run_cell(const Cell& c) {
  ClusterOptions copt;
  copt.nodes = c.gpus / c.cfg.gpus_per_node;
  copt.placement = Placement::kScatterSwitches;
  copt.seed = c.seed;
  Cluster cluster(c.cfg, copt);
  CommOptions opt;
  opt.env = c.cfg.tuned_env();
  auto comm = make_comm(c.mech, cluster, first_n_gpus(cluster, c.gpus), opt);
  return goodput_gbps(kBuffer, comm->time_allreduce(kBuffer));
}

void end_to_end_section(Table& t) {
  std::vector<Cell> cells;
  for (const SystemConfig& cfg : all_systems()) {
    for (int gpus = cfg.gpus_per_node; gpus <= kExactLimitGpus; gpus *= 2) {
      for (const Mechanism mech : {Mechanism::kCcl, Mechanism::kMpi}) {
        for (int rep = 0; rep < 2; ++rep) {
          cells.push_back({cfg, mech, gpus, cell_seed(42, cells.size(), rep)});
        }
      }
    }
  }

  std::vector<double> serial(cells.size());
  const auto t_serial = std::chrono::steady_clock::now();
  run_cells(1, cells.size(), [&](std::size_t i) { serial[i] = run_cell(cells[i]); });
  const double serial_ms = ms_since(t_serial);

  // The speedup is bounded by the host's core count; record it so the
  // archived trend is interpretable across runner generations. On a 1-CPU
  // runner the pool cannot beat the serial run, so the comparison row is an
  // explicit skip marker rather than a meaningless ~1.0x data point.
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const std::string cpus = std::to_string(host_cpus);
  t.add_row({"1", std::to_string(cells.size()), cpus, fmt(serial_ms, 0), "1.00"});
  if (host_cpus <= 1) {
    t.add_row({"-", std::to_string(cells.size()), cpus, "-", "skipped: 1 cpu"});
    return;
  }

  const int workers = jobs() > 0 ? jobs() : 4;
  std::vector<double> parallel(cells.size());
  const auto t_par = std::chrono::steady_clock::now();
  run_cells(workers, cells.size(), [&](std::size_t i) { parallel[i] = run_cell(cells[i]); });
  const double par_ms = ms_since(t_par);

  if (parallel != serial) {
    std::cerr << "error: parallel cells diverged from the serial run\n";
    std::exit(1);
  }

  t.add_row({std::to_string(workers), std::to_string(cells.size()), cpus, fmt(par_ms, 0),
             fmt(serial_ms / par_ms, 2)});
}

// --- section 3: incremental event replay ------------------------------------

// A "regional" fabric: independent regions of 16 links each (two leaves of
// three GPUs and a shared spine), so most reallocation events are local to
// one region. This is the shape that favors the incremental solver; the
// full-resolve reference re-solves the whole active set on every event,
// which is exactly what every pre-PR-7 run paid.
struct ReplayScript {
  struct Entry {
    std::uint32_t region;
    std::uint8_t src, dst;  // GPU index within the region, 0..5
    Bytes bytes;
  };
  int regions = 0;
  int waves = 0;
  std::vector<Entry> entries;  // wave-major, one per (wave, region)
};

ReplayScript make_replay_script(int regions, int flows, std::uint64_t seed) {
  ReplayScript sc;
  sc.regions = regions;
  sc.waves = flows / regions;
  sc.entries.reserve(static_cast<std::size_t>(sc.waves) * regions);
  Rng rng(seed);
  for (int w = 0; w < sc.waves; ++w) {
    for (int r = 0; r < regions; ++r) {
      ReplayScript::Entry e;
      e.region = static_cast<std::uint32_t>(r);
      e.src = static_cast<std::uint8_t>(rng.uniform_int(6));
      e.dst = static_cast<std::uint8_t>(rng.uniform_int(6));
      if (e.dst == e.src) e.dst = (e.dst + 1) % 6;
      e.bytes = static_cast<Bytes>(128_KiB << rng.uniform_int(5));  // 128 KiB .. 2 MiB
      sc.entries.push_back(e);
    }
  }
  return sc;
}

/// Replay the script through one solver configuration; returns wall-clock ms
/// and appends every (flow index, completion ps) pair to `delivered`.
double run_replay(const ReplayScript& sc, SolverMode mode, int shards,
                  std::vector<std::pair<std::uint32_t, std::int64_t>>& delivered) {
  Graph g;
  struct Region {
    std::vector<LinkId> up;  // gpu -> leaf duplex, 6 per region
    LinkId trunk[2];         // leaf -> spine duplex
  };
  std::vector<Region> regions(sc.regions);
  for (Region& region : regions) {
    const DeviceId spine = g.add_device({DeviceKind::kSwitch, -1, 0, "spine"});
    DeviceId leaves[2];
    for (int l = 0; l < 2; ++l) {
      leaves[l] = g.add_device({DeviceKind::kSwitch, -1, l, "leaf"});
      region.trunk[l] =
          g.add_duplex_link(leaves[l], spine, gbps(200), microseconds(2), LinkType::kLeafSpine);
    }
    for (int k = 0; k < 6; ++k) {
      const DeviceId gpu = g.add_device({DeviceKind::kGpu, 0, k, "gpu"});
      region.up.push_back(
          g.add_duplex_link(gpu, leaves[k / 3], gbps(100), microseconds(1), LinkType::kNvLink));
    }
  }

  Engine engine;
  Network net(engine, g);
  net.set_solver_mode(mode);
  net.set_shards(shards);
  delivered.reserve(delivered.size() + sc.entries.size());

  // One engine event per wave; the network coalesces the wave's starts into
  // a single reallocation, completions then arrive one event each.
  for (int w = 0; w < sc.waves; ++w) {
    engine.at(microseconds(static_cast<double>(w) * 30.0), [&, w] {
      const std::size_t base = static_cast<std::size_t>(w) * sc.regions;
      for (int i = 0; i < sc.regions; ++i) {
        const ReplayScript::Entry& e = sc.entries[base + i];
        const Region& region = regions[e.region];
        Route route;
        route.push_back(region.up[e.src]);
        if (e.src / 3 != e.dst / 3) {
          route.push_back(region.trunk[e.src / 3]);
          route.push_back(region.trunk[e.dst / 3] + 1);
        }
        route.push_back(region.up[e.dst] + 1);
        const std::uint32_t index = static_cast<std::uint32_t>(base + i);
        net.start_flow({std::move(route), e.bytes, 0, 0}, [&delivered, index](SimTime t) {
          delivered.emplace_back(index, t.ps);
        });
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  return ms_since(t0);
}

void replay_section(Table& t) {
  struct Scale {
    int regions, flows;
  };
  double largest_speedup = 0;
  for (const Scale s : {Scale{64, 1 << 16}, Scale{256, 1 << 18}, Scale{1024, 1 << 20}}) {
    const ReplayScript sc = make_replay_script(s.regions, s.flows, /*seed=*/0xcafe + s.flows);
    std::vector<std::pair<std::uint32_t, std::int64_t>> full, inc, sharded;

    const double full_ms = run_replay(sc, SolverMode::kFullResolve, 1, full);
    const double inc_ms = run_replay(sc, SolverMode::kIncremental, 1, inc);
    if (inc != full) {
      std::cerr << "error: incremental replay diverged from the full-resolve reference\n";
      std::exit(1);
    }

    // Sharded pass only where threads can help; equality is checked in the
    // differential test suite at any shard count regardless.
    std::string sharded_col = "-";
    if (std::thread::hardware_concurrency() > 1) {
      const double sharded_ms = run_replay(sc, SolverMode::kIncremental, 4, sharded);
      if (sharded != full) {
        std::cerr << "error: sharded replay diverged from the full-resolve reference\n";
        std::exit(1);
      }
      sharded_col = fmt(sharded_ms, 1);
    }

    const double speedup = full_ms / inc_ms;
    largest_speedup = speedup;
    t.add_row({std::to_string(16 * s.regions), std::to_string(s.flows), fmt(full_ms, 1),
               fmt(inc_ms, 1), fmt(speedup, 2), sharded_col});
  }
  if (largest_speedup < 2.0) {
    std::cerr << "error: incremental speedup below the 2x floor on the largest replay\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv, gpucomm::bench::Parallel::kCells);
  header("perf", "wall-clock: solver fast path and parallel cell harness");

  std::cout << "\n--- solver: maxmin_fair_rates vs FairshareSolver (identical rates) ---\n";
  Table solver({"links", "flows", "reps", "reference_ms", "fastpath_ms", "speedup"});
  solver_section(solver);
  emit(solver, "perf_solver.csv");

  std::cout << "\n--- end-to-end: serial vs --jobs cell harness (identical results) ---\n";
  Table e2e({"jobs", "cells", "host_cpus", "wall_ms", "speedup"});
  end_to_end_section(e2e);
  emit(e2e, "perf_end_to_end.csv");

  std::cout << "\n--- incremental: event replay, full re-solve vs incremental "
               "(identical completions) ---\n";
  Table replay({"links", "flows", "full_ms", "incremental_ms", "speedup", "shards4_ms"});
  replay_section(replay);
  emit(replay, "perf_incremental.csv");
  return 0;
}
