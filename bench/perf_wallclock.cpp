// Wall-clock performance tracking (not a paper figure).
//
// Two sections, both emitted through --json so CI can archive the trend
// (BENCH_perf.json — informational, no gate):
//
//  1. solver: the progressive-filling allocator on randomized problems,
//     reference maxmin_fair_rates vs the FairshareSolver fast path used by
//     Network. The two must produce bit-identical rates (checked here every
//     repetition; the bench aborts on any mismatch).
//
//  2. end_to_end: a fig10-style sweep of exact-sim allreduce cells
//     (system x library x scale x rep), run serially and on the --jobs
//     worker pool (default 4 when the flag is absent). Cell results must
//     match between the two runs bit-for-bit.
//
// Wall-clock numbers vary with the host; the speedup columns are the
// quantity tracked across commits.
#include <algorithm>
#include <chrono>
#include <limits>
#include <random>
#include <thread>

#include "bench_common.hpp"
#include "gpucomm/harness/parallel.hpp"
#include "gpucomm/net/fairshare.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- section 1: solver ------------------------------------------------------

/// A randomized allocation problem shaped like the ones Network produces:
/// short routes over a shared fabric, a minority of capped flows, a few
/// empty routes (pure local transfers) and zero-capacity (down) links.
FairshareProblem random_problem(std::size_t links, std::size_t flows,
                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> cap_dist(25e9, 400e9);
  std::uniform_int_distribution<std::size_t> link_dist(0, links - 1);
  std::uniform_int_distribution<int> len_dist(2, 8);
  std::uniform_int_distribution<int> pct(0, 99);

  FairshareProblem p;
  p.capacity.resize(links);
  for (std::size_t l = 0; l < links; ++l) {
    p.capacity[l] = pct(rng) < 2 ? 0.0 : cap_dist(rng);
  }
  p.flows.resize(flows);
  p.caps.assign(flows, std::numeric_limits<Bandwidth>::infinity());
  for (std::size_t i = 0; i < flows; ++i) {
    if (pct(rng) < 3) continue;  // empty route: no network constraint
    const int len = len_dist(rng);
    std::vector<LinkId>& route = p.flows[i];
    for (int k = 0; k < len; ++k) {
      const LinkId l = static_cast<LinkId>(link_dist(rng));
      if (std::find(route.begin(), route.end(), l) == route.end()) route.push_back(l);
    }
    if (pct(rng) < 20) p.caps[i] = cap_dist(rng) / 4;
  }
  return p;
}

void solver_section(Table& t) {
  struct Scale {
    std::size_t links, flows;
    int reps;
  };
  for (const Scale s : {Scale{256, 512, 400}, Scale{1024, 4096, 60}, Scale{4096, 16384, 15}}) {
    const FairshareProblem p = random_problem(s.links, s.flows, /*seed=*/0xf00d + s.flows);
    std::vector<const Route*> routes;
    routes.reserve(p.flows.size());
    for (const std::vector<LinkId>& r : p.flows) routes.push_back(&r);

    const std::vector<Bandwidth> want = maxmin_fair_rates(p);
    FairshareSolver solver;

    const auto t_ref = std::chrono::steady_clock::now();
    for (int r = 0; r < s.reps; ++r) {
      const std::vector<Bandwidth> got = maxmin_fair_rates(p);
      if (got != want) {
        std::cerr << "error: reference solver is not deterministic\n";
        std::exit(1);
      }
    }
    const double ref_ms = ms_since(t_ref);

    const auto t_fast = std::chrono::steady_clock::now();
    for (int r = 0; r < s.reps; ++r) {
      const std::vector<Bandwidth>& got = solver.solve(p.capacity, routes, p.caps);
      if (got != want) {
        std::cerr << "error: FairshareSolver diverged from maxmin_fair_rates\n";
        std::exit(1);
      }
    }
    const double fast_ms = ms_since(t_fast);

    t.add_row({std::to_string(s.links), std::to_string(s.flows), std::to_string(s.reps),
               fmt(ref_ms, 1), fmt(fast_ms, 1), fmt(ref_ms / fast_ms, 2)});
  }
}

// --- section 2: end_to_end --------------------------------------------------

constexpr Bytes kBuffer = 64_MiB;
constexpr int kExactLimitGpus = 32;

struct Cell {
  SystemConfig cfg;
  Mechanism mech;
  int gpus;
  std::uint64_t seed;
};

double run_cell(const Cell& c) {
  ClusterOptions copt;
  copt.nodes = c.gpus / c.cfg.gpus_per_node;
  copt.placement = Placement::kScatterSwitches;
  copt.seed = c.seed;
  Cluster cluster(c.cfg, copt);
  CommOptions opt;
  opt.env = c.cfg.tuned_env();
  auto comm = make_comm(c.mech, cluster, first_n_gpus(cluster, c.gpus), opt);
  return goodput_gbps(kBuffer, comm->time_allreduce(kBuffer));
}

void end_to_end_section(Table& t) {
  std::vector<Cell> cells;
  for (const SystemConfig& cfg : all_systems()) {
    for (int gpus = cfg.gpus_per_node; gpus <= kExactLimitGpus; gpus *= 2) {
      for (const Mechanism mech : {Mechanism::kCcl, Mechanism::kMpi}) {
        for (int rep = 0; rep < 2; ++rep) {
          cells.push_back({cfg, mech, gpus, cell_seed(42, cells.size(), rep)});
        }
      }
    }
  }

  std::vector<double> serial(cells.size());
  const auto t_serial = std::chrono::steady_clock::now();
  run_cells(1, cells.size(), [&](std::size_t i) { serial[i] = run_cell(cells[i]); });
  const double serial_ms = ms_since(t_serial);

  // The speedup is bounded by the host's core count; record it so the
  // archived trend is interpretable across runner generations. On a 1-CPU
  // runner the pool cannot beat the serial run, so the comparison row is an
  // explicit skip marker rather than a meaningless ~1.0x data point.
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const std::string cpus = std::to_string(host_cpus);
  t.add_row({"1", std::to_string(cells.size()), cpus, fmt(serial_ms, 0), "1.00"});
  if (host_cpus <= 1) {
    t.add_row({"-", std::to_string(cells.size()), cpus, "-", "skipped: 1 cpu"});
    return;
  }

  const int workers = jobs() > 0 ? jobs() : 4;
  std::vector<double> parallel(cells.size());
  const auto t_par = std::chrono::steady_clock::now();
  run_cells(workers, cells.size(), [&](std::size_t i) { parallel[i] = run_cell(cells[i]); });
  const double par_ms = ms_since(t_par);

  if (parallel != serial) {
    std::cerr << "error: parallel cells diverged from the serial run\n";
    std::exit(1);
  }

  t.add_row({std::to_string(workers), std::to_string(cells.size()), cpus, fmt(par_ms, 0),
             fmt(serial_ms / par_ms, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv, gpucomm::bench::Parallel::kCells);
  header("perf", "wall-clock: solver fast path and parallel cell harness");

  std::cout << "\n--- solver: maxmin_fair_rates vs FairshareSolver (identical rates) ---\n";
  Table solver({"links", "flows", "reps", "reference_ms", "fastpath_ms", "speedup"});
  solver_section(solver);
  emit(solver, "perf_solver.csv");

  std::cout << "\n--- end-to-end: serial vs --jobs cell harness (identical results) ---\n";
  Table e2e({"jobs", "cells", "host_cpus", "wall_ms", "speedup"});
  end_to_end_section(e2e);
  emit(e2e, "perf_end_to_end.csv");
  return 0;
}
