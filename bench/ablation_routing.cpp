// Routing ablation on the Slingshot Dragonfly (Alps): minimal-adaptive vs
// Valiant global routing, under a benign pattern (cross-group ping-pong)
// and under an adversarial one (every node of group A talking to group B —
// the pattern minimal routing handles worst).
#include "bench_common.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

SystemConfig alps_with(bool valiant) {
  SystemConfig cfg = alps_config();
  cfg.fabric.dragonfly.valiant = valiant;
  return cfg;
}

/// A deliberately thin-global fabric: many groups and few switches per
/// group leave only ~5 parallel links per group pair, so the group-shift
/// pattern oversubscribes minimal routing while local paths stay wide.
SystemConfig thin_global(bool valiant) {
  SystemConfig cfg = alps_config();
  cfg.fabric.dragonfly.groups = 24;
  cfg.fabric.dragonfly.switches_per_group = 8;
  cfg.fabric.dragonfly.valiant = valiant;
  return cfg;
}

/// Group-shift adversarial pattern: every rank of group g sends to its
/// counterpart in group g+1. Under minimal routing all of a group's traffic
/// funnels through the direct g -> g+1 links; Valiant detours spread it over
/// every group. Returns the per-GPU goodput.
double adversarial_goodput(const SystemConfig& cfg, int nodes_per_group, Bytes bytes) {
  const int groups = cfg.fabric.dragonfly.groups;
  ClusterOptions copt;
  copt.nodes = groups * nodes_per_group;
  copt.placement = Placement::kScatterGroups;  // node i -> group i % groups
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = cfg.tuned_env();
  const int gpn = cfg.gpus_per_node;
  const auto gpus = first_n_gpus(cluster, copt.nodes * gpn);
  MpiComm mpi(cluster, gpus, opt);

  bool done = false;
  auto join = JoinCounter::create(copt.nodes * gpn, [&done] { done = true; });
  const SimTime start = cluster.engine().now();
  for (int node = 0; node < copt.nodes; ++node) {
    // Scatter-groups: node i lives in group i % groups; its shift partner is
    // node i+1 (wrapping within the same "row" of the allocation).
    const int row = node / groups;
    const int partner = row * groups + (node + 1) % groups;
    for (int i = 0; i < gpn; ++i) {
      mpi.send(node * gpn + i, partner * gpn + i, bytes, [join] { join->arrive(); });
    }
  }
  cluster.engine().run_until([&done] { return done; });
  const SimTime elapsed = cluster.engine().now() - start;
  return goodput_gbps(bytes, elapsed);
}

double pingpong_latency(const SystemConfig& cfg) {
  ClusterOptions copt;
  copt.nodes = 2;
  copt.placement = Placement::kScatterGroups;
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = cfg.tuned_env();
  MpiComm mpi(cluster, {0, cfg.gpus_per_node}, opt);
  return mpi.time_pingpong(0, 1, 1).micros() / 2;
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Routing ablation", "Alps Dragonfly: minimal-adaptive vs Valiant global routing");

  Table t({"routing", "cross_group_lat_us", "shift_gp_full_fabric", "shift_gp_thin_fabric"});
  for (const bool valiant : {false, true}) {
    t.add_row({valiant ? "valiant" : "minimal-adaptive",
               fmt(pingpong_latency(alps_with(valiant))),
               fmt(adversarial_goodput(alps_with(valiant), 1, 64_MiB), 1),
               fmt(adversarial_goodput(thin_global(valiant), 6, 64_MiB), 1)});
  }
  emit(t, "ablation_routing.csv");
  std::cout
      << "\n(with fine-grained adaptive spreading over the parallel global links,\n"
         " minimal routing wins both patterns: Valiant pays an extra global hop of\n"
         " latency, doubles the global traffic, and concentrates detoured flows on\n"
         " the destination's local links. This matches Slingshot's production choice\n"
         " of adaptive-minimal routing and its noise immunity in Sec. VI)\n";
  return 0;
}
