// Sec. IV-A / IV-C analysis: edge forwarding index of every node topology
// and the derived expected collective goodputs (the dashed lines of
// Figs. 5 and 6).
#include "bench_common.hpp"
#include "gpucomm/topology/forwarding.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Sec. IV-A", "Edge forwarding index and expected intra-node goodput");

  Table t({"system", "fully_connected", "edge_fwd_index", "max_loaded_link",
           "expected_a2a_gbps", "expected_ar_gbps", "disjoint_rings"});
  for (const SystemConfig& cfg : all_systems()) {
    Graph g;
    const NodeDevices node = build_node(g, cfg.arch, 0);
    const auto fwd = analyze_forwarding(g, node.gpus, gpu_fabric_options());
    std::string max_link = "-";
    if (fwd.max_loaded_link != kInvalidLink) {
      const Link& l = g.link(fwd.max_loaded_link);
      max_link = g.device(l.src).label + "->" + g.device(l.dst).label;
    }
    const auto rings = disjoint_hamiltonian_cycles(g, node.gpus, gpu_fabric_options());
    t.add_row({cfg.name, fully_connected(g, node.gpus) ? "yes" : "no",
               std::to_string(fwd.edge_forwarding_index), max_link,
               fmt(expected_alltoall_goodput(g, node.gpus, gpu_fabric_options()) / 1e9, 0),
               fmt(expected_allreduce_goodput(g, node.gpus, gpu_fabric_options()) / 1e9, 0),
               std::to_string(2 * rings.size())});
  }
  emit(t, "expected_goodput.csv");
  std::cout << "\n(paper: index 1 on Alps/Leonardo, 4 on LUMI's GCD1-GCD5 / GCD3-GCD7;\n"
               " expected alltoall 3600/2400/600 Gb/s, allreduce 3600/2400/800 Gb/s)\n";
  return 0;
}
