// Fault-degradation sweep: goodput vs number of failed NIC-wire link pairs.
//
// For each system, a two-node job runs a 64 MiB allreduce (CCL and MPI)
// while k of node 0's four NIC wires are down from t=0. Routing fails the
// node's traffic over to the surviving NICs, so the inter-node bandwidth
// shrinks roughly in proportion: goodput must degrade monotonically in k.
// The last NIC is never failed — the job stays connected and completes.
//
// Expected shape: *CCL stripes its inter-node rings across all four NICs and
// loses ~half its goodput at k=1; MPI's two-rank ring uses one NIC at a time,
// so it merely fails over at equal capacity and stays flat until k=3.
#include "bench_common.hpp"
#include "gpucomm/fault/fault_injector.hpp"
#include "gpucomm/fault/fault_schedule.hpp"

using namespace gpucomm;
using namespace gpucomm::bench;

namespace {

constexpr Bytes kBuffer = 64_MiB;

double degraded_goodput(const SystemConfig& cfg, Mechanism mech, int failed_nics) {
  ClusterOptions copt;
  copt.nodes = 2;
  copt.placement = Placement::kScatterGroups;
  copt.enable_noise = false;  // isolate the fault effect
  Cluster cluster(cfg, copt);

  fault::FaultSchedule sched;
  const std::vector<DeviceId>& nics = cluster.node(0).nics;
  for (int i = 0; i < failed_nics && i + 1 < static_cast<int>(nics.size()); ++i) {
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kNicFail;
    e.time = SimTime::zero();
    e.dev_a = nics[static_cast<std::size_t>(i)];
    sched.events.push_back(e);
  }
  fault::FaultInjector inj(cluster, sched);

  CommOptions opt;
  opt.env = cfg.tuned_env();
  auto comm = make_comm(mech, cluster, first_n_gpus(cluster, cluster.total_gpus()), opt);
  return goodput_gbps(kBuffer, comm->time_allreduce(kBuffer));
}

}  // namespace

int main(int argc, char** argv) {
  gpucomm::bench::init(argc, argv);
  header("Fault degradation", "64 MiB allreduce goodput vs failed NIC wires (node 0)");

  for (const SystemConfig& cfg : all_systems()) {
    std::cout << "\n--- " << cfg.name << " ---\n";
    Table t({"failed_nics", "mechanism", "goodput_gbps", "vs_healthy"});
    for (const Mechanism mech : {Mechanism::kCcl, Mechanism::kMpi}) {
      double healthy = 0.0;
      for (int k = 0; k < static_cast<int>(cfg.nics_per_node); ++k) {
        const double gp = degraded_goodput(cfg, mech, k);
        if (k == 0) healthy = gp;
        t.add_row({std::to_string(k), to_string(mech), fmt(gp, 2),
                   fmt(healthy > 0.0 ? gp / healthy : 0.0, 3)});
      }
    }
    emit(t, "fault_degradation_" + cfg.name + ".csv");
  }
  return 0;
}
