file(REMOVE_RECURSE
  "CMakeFiles/fig03_intranode_pingpong.dir/fig03_intranode_pingpong.cpp.o"
  "CMakeFiles/fig03_intranode_pingpong.dir/fig03_intranode_pingpong.cpp.o.d"
  "fig03_intranode_pingpong"
  "fig03_intranode_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_intranode_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
