# Empty dependencies file for fig03_intranode_pingpong.
# This may be replaced when dependencies are built.
