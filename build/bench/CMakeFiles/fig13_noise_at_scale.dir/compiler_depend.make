# Empty compiler generated dependencies file for fig13_noise_at_scale.
# This may be replaced when dependencies are built.
