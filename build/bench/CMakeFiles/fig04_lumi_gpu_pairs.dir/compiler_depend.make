# Empty compiler generated dependencies file for fig04_lumi_gpu_pairs.
# This may be replaced when dependencies are built.
