file(REMOVE_RECURSE
  "CMakeFiles/fig04_lumi_gpu_pairs.dir/fig04_lumi_gpu_pairs.cpp.o"
  "CMakeFiles/fig04_lumi_gpu_pairs.dir/fig04_lumi_gpu_pairs.cpp.o.d"
  "fig04_lumi_gpu_pairs"
  "fig04_lumi_gpu_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_lumi_gpu_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
