# Empty compiler generated dependencies file for expected_goodput.
# This may be replaced when dependencies are built.
