file(REMOVE_RECURSE
  "CMakeFiles/expected_goodput.dir/expected_goodput.cpp.o"
  "CMakeFiles/expected_goodput.dir/expected_goodput.cpp.o.d"
  "expected_goodput"
  "expected_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
