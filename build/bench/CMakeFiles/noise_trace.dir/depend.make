# Empty dependencies file for noise_trace.
# This may be replaced when dependencies are built.
