file(REMOVE_RECURSE
  "CMakeFiles/noise_trace.dir/noise_trace.cpp.o"
  "CMakeFiles/noise_trace.dir/noise_trace.cpp.o.d"
  "noise_trace"
  "noise_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
