# Empty compiler generated dependencies file for fig06_intranode_allreduce.
# This may be replaced when dependencies are built.
