file(REMOVE_RECURSE
  "CMakeFiles/fig06_intranode_allreduce.dir/fig06_intranode_allreduce.cpp.o"
  "CMakeFiles/fig06_intranode_allreduce.dir/fig06_intranode_allreduce.cpp.o.d"
  "fig06_intranode_allreduce"
  "fig06_intranode_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_intranode_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
