file(REMOVE_RECURSE
  "CMakeFiles/fig08_network_distance.dir/fig08_network_distance.cpp.o"
  "CMakeFiles/fig08_network_distance.dir/fig08_network_distance.cpp.o.d"
  "fig08_network_distance"
  "fig08_network_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_network_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
