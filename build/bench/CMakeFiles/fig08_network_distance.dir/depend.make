# Empty dependencies file for fig08_network_distance.
# This may be replaced when dependencies are built.
