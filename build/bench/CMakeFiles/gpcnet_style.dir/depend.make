# Empty dependencies file for gpcnet_style.
# This may be replaced when dependencies are built.
