file(REMOVE_RECURSE
  "CMakeFiles/gpcnet_style.dir/gpcnet_style.cpp.o"
  "CMakeFiles/gpcnet_style.dir/gpcnet_style.cpp.o.d"
  "gpcnet_style"
  "gpcnet_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpcnet_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
