# Empty compiler generated dependencies file for ablation_allreduce_algo.
# This may be replaced when dependencies are built.
