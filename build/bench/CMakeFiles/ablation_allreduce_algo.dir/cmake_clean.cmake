file(REMOVE_RECURSE
  "CMakeFiles/ablation_allreduce_algo.dir/ablation_allreduce_algo.cpp.o"
  "CMakeFiles/ablation_allreduce_algo.dir/ablation_allreduce_algo.cpp.o.d"
  "ablation_allreduce_algo"
  "ablation_allreduce_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allreduce_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
