file(REMOVE_RECURSE
  "CMakeFiles/fig11_rccl_vs_mpi_ratio.dir/fig11_rccl_vs_mpi_ratio.cpp.o"
  "CMakeFiles/fig11_rccl_vs_mpi_ratio.dir/fig11_rccl_vs_mpi_ratio.cpp.o.d"
  "fig11_rccl_vs_mpi_ratio"
  "fig11_rccl_vs_mpi_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rccl_vs_mpi_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
