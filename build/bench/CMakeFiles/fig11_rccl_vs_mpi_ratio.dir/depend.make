# Empty dependencies file for fig11_rccl_vs_mpi_ratio.
# This may be replaced when dependencies are built.
