file(REMOVE_RECURSE
  "CMakeFiles/fig05_intranode_alltoall.dir/fig05_intranode_alltoall.cpp.o"
  "CMakeFiles/fig05_intranode_alltoall.dir/fig05_intranode_alltoall.cpp.o.d"
  "fig05_intranode_alltoall"
  "fig05_intranode_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_intranode_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
