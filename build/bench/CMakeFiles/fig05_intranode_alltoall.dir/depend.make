# Empty dependencies file for fig05_intranode_alltoall.
# This may be replaced when dependencies are built.
