file(REMOVE_RECURSE
  "CMakeFiles/fig12_service_levels.dir/fig12_service_levels.cpp.o"
  "CMakeFiles/fig12_service_levels.dir/fig12_service_levels.cpp.o.d"
  "fig12_service_levels"
  "fig12_service_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_service_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
