# Empty dependencies file for fig12_service_levels.
# This may be replaced when dependencies are built.
