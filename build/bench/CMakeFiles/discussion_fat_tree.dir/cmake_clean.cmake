file(REMOVE_RECURSE
  "CMakeFiles/discussion_fat_tree.dir/discussion_fat_tree.cpp.o"
  "CMakeFiles/discussion_fat_tree.dir/discussion_fat_tree.cpp.o.d"
  "discussion_fat_tree"
  "discussion_fat_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_fat_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
