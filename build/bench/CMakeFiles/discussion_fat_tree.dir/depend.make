# Empty dependencies file for discussion_fat_tree.
# This may be replaced when dependencies are built.
