# Empty dependencies file for fig09_alltoall_scalability.
# This may be replaced when dependencies are built.
