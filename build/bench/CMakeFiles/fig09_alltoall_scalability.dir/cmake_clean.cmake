file(REMOVE_RECURSE
  "CMakeFiles/fig09_alltoall_scalability.dir/fig09_alltoall_scalability.cpp.o"
  "CMakeFiles/fig09_alltoall_scalability.dir/fig09_alltoall_scalability.cpp.o.d"
  "fig09_alltoall_scalability"
  "fig09_alltoall_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_alltoall_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
