# Empty compiler generated dependencies file for fig07_internode_pingpong.
# This may be replaced when dependencies are built.
