file(REMOVE_RECURSE
  "CMakeFiles/fig07_internode_pingpong.dir/fig07_internode_pingpong.cpp.o"
  "CMakeFiles/fig07_internode_pingpong.dir/fig07_internode_pingpong.cpp.o.d"
  "fig07_internode_pingpong"
  "fig07_internode_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_internode_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
