# Empty compiler generated dependencies file for noise_study.
# This may be replaced when dependencies are built.
