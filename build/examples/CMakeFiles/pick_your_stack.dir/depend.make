# Empty dependencies file for pick_your_stack.
# This may be replaced when dependencies are built.
