file(REMOVE_RECURSE
  "CMakeFiles/pick_your_stack.dir/pick_your_stack.cpp.o"
  "CMakeFiles/pick_your_stack.dir/pick_your_stack.cpp.o.d"
  "pick_your_stack"
  "pick_your_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pick_your_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
