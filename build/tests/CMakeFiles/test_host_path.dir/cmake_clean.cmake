file(REMOVE_RECURSE
  "CMakeFiles/test_host_path.dir/test_host_path.cpp.o"
  "CMakeFiles/test_host_path.dir/test_host_path.cpp.o.d"
  "test_host_path"
  "test_host_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
