# Empty dependencies file for test_host_path.
# This may be replaced when dependencies are built.
