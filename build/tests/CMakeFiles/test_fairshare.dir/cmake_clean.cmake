file(REMOVE_RECURSE
  "CMakeFiles/test_fairshare.dir/test_fairshare.cpp.o"
  "CMakeFiles/test_fairshare.dir/test_fairshare.cpp.o.d"
  "test_fairshare"
  "test_fairshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
