# Empty dependencies file for test_collectives_intra.
# This may be replaced when dependencies are built.
