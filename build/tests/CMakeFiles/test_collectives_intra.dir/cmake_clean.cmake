file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_intra.dir/test_collectives_intra.cpp.o"
  "CMakeFiles/test_collectives_intra.dir/test_collectives_intra.cpp.o.d"
  "test_collectives_intra"
  "test_collectives_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
