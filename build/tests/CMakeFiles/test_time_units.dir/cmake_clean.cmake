file(REMOVE_RECURSE
  "CMakeFiles/test_time_units.dir/test_time_units.cpp.o"
  "CMakeFiles/test_time_units.dir/test_time_units.cpp.o.d"
  "test_time_units"
  "test_time_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
