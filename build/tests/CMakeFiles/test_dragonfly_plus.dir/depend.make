# Empty dependencies file for test_dragonfly_plus.
# This may be replaced when dependencies are built.
