file(REMOVE_RECURSE
  "CMakeFiles/test_dragonfly_plus.dir/test_dragonfly_plus.cpp.o"
  "CMakeFiles/test_dragonfly_plus.dir/test_dragonfly_plus.cpp.o.d"
  "test_dragonfly_plus"
  "test_dragonfly_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dragonfly_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
