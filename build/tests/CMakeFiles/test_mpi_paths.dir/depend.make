# Empty dependencies file for test_mpi_paths.
# This may be replaced when dependencies are built.
