file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_paths.dir/test_mpi_paths.cpp.o"
  "CMakeFiles/test_mpi_paths.dir/test_mpi_paths.cpp.o.d"
  "test_mpi_paths"
  "test_mpi_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
