file(REMOVE_RECURSE
  "CMakeFiles/test_allreduce_algos.dir/test_allreduce_algos.cpp.o"
  "CMakeFiles/test_allreduce_algos.dir/test_allreduce_algos.cpp.o.d"
  "test_allreduce_algos"
  "test_allreduce_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allreduce_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
