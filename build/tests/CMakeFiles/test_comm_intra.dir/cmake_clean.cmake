file(REMOVE_RECURSE
  "CMakeFiles/test_comm_intra.dir/test_comm_intra.cpp.o"
  "CMakeFiles/test_comm_intra.dir/test_comm_intra.cpp.o.d"
  "test_comm_intra"
  "test_comm_intra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_intra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
