# Empty dependencies file for test_comm_intra.
# This may be replaced when dependencies are built.
