# Empty compiler generated dependencies file for test_intra_node.
# This may be replaced when dependencies are built.
