file(REMOVE_RECURSE
  "CMakeFiles/test_intra_node.dir/test_intra_node.cpp.o"
  "CMakeFiles/test_intra_node.dir/test_intra_node.cpp.o.d"
  "test_intra_node"
  "test_intra_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intra_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
