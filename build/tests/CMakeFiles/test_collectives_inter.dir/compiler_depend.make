# Empty compiler generated dependencies file for test_collectives_inter.
# This may be replaced when dependencies are built.
