file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_inter.dir/test_collectives_inter.cpp.o"
  "CMakeFiles/test_collectives_inter.dir/test_collectives_inter.cpp.o.d"
  "test_collectives_inter"
  "test_collectives_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
