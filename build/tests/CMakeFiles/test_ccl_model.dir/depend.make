# Empty dependencies file for test_ccl_model.
# This may be replaced when dependencies are built.
