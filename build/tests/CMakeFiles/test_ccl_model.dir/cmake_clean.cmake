file(REMOVE_RECURSE
  "CMakeFiles/test_ccl_model.dir/test_ccl_model.cpp.o"
  "CMakeFiles/test_ccl_model.dir/test_ccl_model.cpp.o.d"
  "test_ccl_model"
  "test_ccl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
