# Empty compiler generated dependencies file for test_collectives_ext.
# This may be replaced when dependencies are built.
