# Empty compiler generated dependencies file for test_comm_props.
# This may be replaced when dependencies are built.
