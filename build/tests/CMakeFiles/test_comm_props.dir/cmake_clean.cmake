file(REMOVE_RECURSE
  "CMakeFiles/test_comm_props.dir/test_comm_props.cpp.o"
  "CMakeFiles/test_comm_props.dir/test_comm_props.cpp.o.d"
  "test_comm_props"
  "test_comm_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
