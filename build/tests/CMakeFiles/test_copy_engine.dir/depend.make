# Empty dependencies file for test_copy_engine.
# This may be replaced when dependencies are built.
