file(REMOVE_RECURSE
  "CMakeFiles/test_copy_engine.dir/test_copy_engine.cpp.o"
  "CMakeFiles/test_copy_engine.dir/test_copy_engine.cpp.o.d"
  "test_copy_engine"
  "test_copy_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_copy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
