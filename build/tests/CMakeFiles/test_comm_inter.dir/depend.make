# Empty dependencies file for test_comm_inter.
# This may be replaced when dependencies are built.
