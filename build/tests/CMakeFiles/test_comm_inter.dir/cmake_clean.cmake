file(REMOVE_RECURSE
  "CMakeFiles/test_comm_inter.dir/test_comm_inter.cpp.o"
  "CMakeFiles/test_comm_inter.dir/test_comm_inter.cpp.o.d"
  "test_comm_inter"
  "test_comm_inter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_inter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
