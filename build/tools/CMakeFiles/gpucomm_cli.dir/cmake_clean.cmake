file(REMOVE_RECURSE
  "CMakeFiles/gpucomm_cli.dir/gpucomm_cli.cpp.o"
  "CMakeFiles/gpucomm_cli.dir/gpucomm_cli.cpp.o.d"
  "gpucomm_cli"
  "gpucomm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpucomm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
