# Empty dependencies file for gpucomm_cli.
# This may be replaced when dependencies are built.
