
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpucomm/cluster/cluster.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/cluster/cluster.cpp.o.d"
  "/root/repo/src/gpucomm/cluster/placement.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/cluster/placement.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/cluster/placement.cpp.o.d"
  "/root/repo/src/gpucomm/comm/ccl/ccl_comm.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/ccl_comm.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/ccl_comm.cpp.o.d"
  "/root/repo/src/gpucomm/comm/ccl/ccl_config.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/ccl_config.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/ccl_config.cpp.o.d"
  "/root/repo/src/gpucomm/comm/ccl/channels.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/channels.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/channels.cpp.o.d"
  "/root/repo/src/gpucomm/comm/ccl/topo_detect.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/topo_detect.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/ccl/topo_detect.cpp.o.d"
  "/root/repo/src/gpucomm/comm/communicator.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/communicator.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/communicator.cpp.o.d"
  "/root/repo/src/gpucomm/comm/dataplane.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/dataplane.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/dataplane.cpp.o.d"
  "/root/repo/src/gpucomm/comm/devcopy.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/devcopy.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/devcopy.cpp.o.d"
  "/root/repo/src/gpucomm/comm/host_path.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/host_path.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/host_path.cpp.o.d"
  "/root/repo/src/gpucomm/comm/mpi/mpi_comm.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/mpi/mpi_comm.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/mpi/mpi_comm.cpp.o.d"
  "/root/repo/src/gpucomm/comm/mpi/mpi_config.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/mpi/mpi_config.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/mpi/mpi_config.cpp.o.d"
  "/root/repo/src/gpucomm/comm/mpi/p2p.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/mpi/p2p.cpp.o.d"
  "/root/repo/src/gpucomm/comm/staging.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/staging.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/comm/staging.cpp.o.d"
  "/root/repo/src/gpucomm/harness/runner.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/harness/runner.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/harness/runner.cpp.o.d"
  "/root/repo/src/gpucomm/harness/stats.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/harness/stats.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/harness/stats.cpp.o.d"
  "/root/repo/src/gpucomm/harness/table.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/harness/table.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/harness/table.cpp.o.d"
  "/root/repo/src/gpucomm/hw/gpu.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/gpu.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/gpu.cpp.o.d"
  "/root/repo/src/gpucomm/hw/link.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/link.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/link.cpp.o.d"
  "/root/repo/src/gpucomm/hw/nic.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/nic.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/nic.cpp.o.d"
  "/root/repo/src/gpucomm/hw/node.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/node.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/node.cpp.o.d"
  "/root/repo/src/gpucomm/hw/switch.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/switch.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/hw/switch.cpp.o.d"
  "/root/repo/src/gpucomm/mem/buffer.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/mem/buffer.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/mem/buffer.cpp.o.d"
  "/root/repo/src/gpucomm/mem/copy_engine.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/mem/copy_engine.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/mem/copy_engine.cpp.o.d"
  "/root/repo/src/gpucomm/net/fairshare.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/net/fairshare.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/net/fairshare.cpp.o.d"
  "/root/repo/src/gpucomm/net/network.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/net/network.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/net/network.cpp.o.d"
  "/root/repo/src/gpucomm/noise/background.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/noise/background.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/noise/background.cpp.o.d"
  "/root/repo/src/gpucomm/noise/noise_model.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/noise/noise_model.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/noise/noise_model.cpp.o.d"
  "/root/repo/src/gpucomm/runtime/clock.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/runtime/clock.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/runtime/clock.cpp.o.d"
  "/root/repo/src/gpucomm/runtime/ops.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/runtime/ops.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/runtime/ops.cpp.o.d"
  "/root/repo/src/gpucomm/runtime/rank.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/runtime/rank.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/runtime/rank.cpp.o.d"
  "/root/repo/src/gpucomm/scale/scale_model.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/scale/scale_model.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/scale/scale_model.cpp.o.d"
  "/root/repo/src/gpucomm/sim/engine.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/engine.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/engine.cpp.o.d"
  "/root/repo/src/gpucomm/sim/event_queue.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/event_queue.cpp.o.d"
  "/root/repo/src/gpucomm/sim/log.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/log.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/log.cpp.o.d"
  "/root/repo/src/gpucomm/sim/random.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/random.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/random.cpp.o.d"
  "/root/repo/src/gpucomm/sim/units.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/units.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/sim/units.cpp.o.d"
  "/root/repo/src/gpucomm/systems/alps.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/alps.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/alps.cpp.o.d"
  "/root/repo/src/gpucomm/systems/leonardo.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/leonardo.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/leonardo.cpp.o.d"
  "/root/repo/src/gpucomm/systems/lumi.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/lumi.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/lumi.cpp.o.d"
  "/root/repo/src/gpucomm/systems/registry.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/registry.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/registry.cpp.o.d"
  "/root/repo/src/gpucomm/systems/system_config.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/system_config.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/systems/system_config.cpp.o.d"
  "/root/repo/src/gpucomm/topology/dragonfly.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/dragonfly.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/dragonfly.cpp.o.d"
  "/root/repo/src/gpucomm/topology/dragonfly_plus.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/dragonfly_plus.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/dragonfly_plus.cpp.o.d"
  "/root/repo/src/gpucomm/topology/fat_tree.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/fat_tree.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/fat_tree.cpp.o.d"
  "/root/repo/src/gpucomm/topology/forwarding.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/forwarding.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/forwarding.cpp.o.d"
  "/root/repo/src/gpucomm/topology/graph.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/graph.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/graph.cpp.o.d"
  "/root/repo/src/gpucomm/topology/intra_node.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/intra_node.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/intra_node.cpp.o.d"
  "/root/repo/src/gpucomm/topology/routing.cpp" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/routing.cpp.o" "gcc" "src/CMakeFiles/gpucomm.dir/gpucomm/topology/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
