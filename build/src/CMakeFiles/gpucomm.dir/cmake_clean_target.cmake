file(REMOVE_RECURSE
  "libgpucomm.a"
)
