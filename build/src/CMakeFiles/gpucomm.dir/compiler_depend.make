# Empty compiler generated dependencies file for gpucomm.
# This may be replaced when dependencies are built.
