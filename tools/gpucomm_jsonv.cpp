// JSON-lines validator: every non-blank stdin line must be one valid JSON
// document (metrics::json_valid, strict RFC 8259). Exits 0 when all lines
// pass, 1 with "line N: <problem>" on stderr at the first failure. CI's
// server-smoke job pipes gpucomm_cli --serve responses through it.
#include <cstdio>
#include <iostream>
#include <string>

#include "gpucomm/metrics/json.hpp"

int main() {
  std::string line;
  std::size_t lineno = 0;
  std::size_t checked = 0;
  while (std::getline(std::cin, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string err;
    if (!gpucomm::metrics::json_valid(line, &err)) {
      std::fprintf(stderr, "line %zu: %s\n", lineno, err.c_str());
      return 1;
    }
    ++checked;
  }
  std::fprintf(stderr, "%zu JSON lines OK\n", checked);
  return 0;
}
