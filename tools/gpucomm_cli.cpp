// Command-line microbenchmark driver, mirroring the paper artifact's
// src/microbench binaries: one invocation = one experiment, human-readable
// table on stdout.
//
// Usage:
//   gpucomm_cli --system leonardo --op allreduce --mechanism ccl
//               --gpus 16 --min 1024 --max 1073741824 [--space host]
//               [--untuned] [--sl N] [--placement packed|switches|groups]
//               [--nodes N] [--no-noise] [--iters N] [--seed N] [--jobs N]
//               [--trace out.json] [--counters] [--profile]
//               [--timeseries out.csv] [--bucket-us N]
//               [--metrics-out out.json] [--dump-schedule] [--faults spec]
//   gpucomm_cli --serve [--serve-jobs N] [--serve-cache-mb N]
//               [--serve-socket path]
//
// Flags are validated strictly (harness/cli_args.hpp): a malformed value or
// unknown name prints one line on stderr and exits with status 2.
//
// --trace writes a Chrome-trace JSON (load in chrome://tracing or Perfetto)
// of every flow's queue/transfer spans; --counters prints per-link and
// per-NIC utilization tables after the results. --profile prints, per size,
// the critical-path breakdown of one representative iteration (per-round
// serialization / contention / propagation / fault-recovery / overhead,
// summing exactly to the end-to-end time) and the top bottleneck links on
// the critical path. --timeseries writes per-link bucketed throughput CSV
// (bucket width --bucket-us) and prints a congestion heatmap. --metrics-out
// writes a machine-readable run manifest JSON (config, seed, git version,
// schedule identities incl. wire_exact, full latency/goodput percentiles,
// and any profile/time-series/counter sections that were enabled); the file
// is byte-identical across runs with the same configuration and seed. None
// of these flags changes the simulated timings.
//
// --faults takes a fault-schedule file, or an inline spec with ';' between
// events ("at 100us down link 4; at 300us up link 4" — see
// fault/fault_schedule.hpp for the grammar). Iterations whose recovery
// retries are exhausted count in the `fails` column instead of the stats.
//
// --jobs N switches the sweep to the deterministic cell harness
// (docs/PERFORMANCE.md): every (size, rep) becomes an independent
// simulation seeded from (--seed, size, rep) and the cells run on N worker
// threads; the merged tables and manifest are byte-identical for any N.
// Because each cell owns its cluster, --jobs is rejected together with the
// whole-run telemetry flags and --faults. Without --jobs the classic
// coupled serial run (one cluster, one noise stream) is kept.
//
// --dump-schedule prints, instead of timings, the Schedule IR the mechanism
// would execute for the op at each size in the sweep — the output of the
// same plan() the implementations run, so what you see is what is timed.
//
// --serve runs the persistent scenario server (docs/SERVER.md): JSON-lines
// queries on stdin (or on --serve-socket), one response line per query with
// the same RunManifest the standalone --metrics-out run writes — byte for
// byte, at any --serve-jobs and any cache state. Scenario flags cannot be
// combined with it; every parameter arrives per query.
//
// op: pingpong | alltoall | allreduce | broadcast | allgather | reducescatter
// mechanism: staging | devcopy | ccl | mpi
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "gpucomm/gpucomm.hpp"
#include "gpucomm/serve/scenario.hpp"
#include "gpucomm/serve/server.hpp"
#include "gpucomm/serve/socket.hpp"

using namespace gpucomm;

namespace {

constexpr const char* kUsage =
    "usage: %s --system S --op OP --mechanism M --gpus N\n"
    "  [--min B --max B]               transfer-size sweep bounds (bytes, x4 steps)\n"
    "  [--space host|device]           where communication buffers live\n"
    "  [--untuned] [--sl N]            default env / service level (virtual lane)\n"
    "  [--placement packed|switches|groups]  rank placement across the fabric\n"
    "  [--nodes N]                     node-count override (default: from --gpus)\n"
    "  [--no-noise]                    drained system: no production noise field\n"
    "  [--net-shards N]                flow-network solver shards (bit-identical\n"
    "                                  rates at any N; threads for wall-clock)\n"
    "  [--iters N] [--seed N]          iteration override / cluster RNG seed\n"
    "  [--jobs N]                      deterministic cell harness: every\n"
    "                                  (size, rep) is an independent simulation\n"
    "                                  with a seed derived from (--seed, size,\n"
    "                                  rep), run on N workers; output is byte-\n"
    "                                  identical for any N (incompatible with\n"
    "                                  --trace/--counters/--profile/\n"
    "                                  --timeseries/--faults)\n"
    "  [--trace out.json]              Chrome-trace of every flow's lifecycle\n"
    "  [--counters]                    per-link / per-NIC utilization tables\n"
    "  [--profile]                     per-round critical-path breakdown and the\n"
    "                                  top bottleneck links on the critical path\n"
    "  [--timeseries out.csv]          bucketed per-link throughput + heatmap\n"
    "  [--bucket-us N]                 time-series bucket width (default 50us)\n"
    "  [--metrics-out out.json]        machine-readable run manifest (config,\n"
    "                                  seed, git version, schedule identity,\n"
    "                                  full percentiles; deterministic output)\n"
    "  [--dump-schedule]               print the Schedule IR instead of timings\n"
    "  [--faults spec]                 fault schedule file or inline spec\n"
    "or: %s --serve                    persistent scenario server: JSON-lines\n"
    "                                  queries on stdin, one response per line\n"
    "                                  (docs/SERVER.md)\n"
    "  [--serve-jobs N]                worker threads answering queries\n"
    "  [--serve-cache-mb N]            cross-query cache budget (default 256)\n"
    "  [--serve-socket path]           listen on a unix socket instead of stdio\n";

/// Print the schedule(s) the communicator's plan() selects at each size in
/// the sweep. For allgather the sweep size is the per-rank contribution,
/// matching time_allgather.
void dump_schedules(Communicator& comm, const cli::CliArgs& a) {
  const CollectiveOp op = serve::op_of(a.op);
  for (Bytes b = a.min_bytes; b <= a.max_bytes; b *= 4) {
    const auto plans = comm.plan(op, b);
    std::printf("-- %s @ %s --\n", a.op.c_str(), format_bytes(b).c_str());
    if (plans.empty()) {
      std::printf("(no schedule: point-to-point or unsupported op)\n");
      continue;
    }
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (plans.size() > 1) std::printf("[concurrent schedule %zu]\n", i);
      std::fputs(sched::describe(plans[i]).c_str(), stdout);
    }
  }
}

/// Solver section of --counters: how the flow network's reallocation events
/// were answered (incremental vs full vs no-work), why full solves happened,
/// the size distribution of the component subproblems, and how the work
/// spread across shards. None of it changes the simulated timings.
void print_solver_stats(const net::SolverStats& s) {
  std::printf("\n-- flow-network solver --\n");
  std::printf("reallocations   %10llu\n", (unsigned long long)s.reallocations);
  std::printf("  incremental   %10llu\n", (unsigned long long)s.incremental_events);
  std::printf("  full          %10llu  (first %llu, link-state %llu, noise %llu, "
              "config %llu, threshold %llu)\n",
              (unsigned long long)s.full_solves, (unsigned long long)s.fallback_first,
              (unsigned long long)s.fallback_link_state, (unsigned long long)s.fallback_noise,
              (unsigned long long)s.fallback_config, (unsigned long long)s.fallback_threshold);
  std::printf("  reference     %10llu\n", (unsigned long long)s.reference_solves);
  std::printf("  no-work       %10llu\n", (unsigned long long)s.no_work_events);
  std::printf("component solves %9llu  (cache hits %llu, misses %llu)\n",
              (unsigned long long)s.component_solves, (unsigned long long)s.cache_hits,
              (unsigned long long)s.cache_misses);
  std::printf("component sizes (log2 flows):");
  std::size_t last = 0;
  for (std::size_t b = 0; b < s.component_size_log2.size(); ++b) {
    if (s.component_size_log2[b] != 0) last = b;
  }
  for (std::size_t b = 0; b <= last; ++b) {
    std::printf(" [2^%zu]=%llu", b, (unsigned long long)s.component_size_log2[b]);
  }
  std::printf("\n");
  if (s.shard_solves.size() > 1) {
    std::printf("shard solves:");
    for (std::size_t i = 0; i < s.shard_solves.size(); ++i) {
      std::printf(" [%zu]=%llu", i, (unsigned long long)s.shard_solves[i]);
    }
    std::printf("\n");
  }
}

int run_serve(const cli::CliArgs& a, const char* argv0) {
  serve::ServeOptions o;
  o.jobs = a.serve_jobs;
  o.cache_bytes = static_cast<std::size_t>(a.serve_cache_mb) << 20;
  if (a.serve_socket.empty()) {
    serve::serve_loop(std::cin, std::cout, o);
    return 0;
  }
  std::string err;
  if (!serve::serve_socket(a.serve_socket, o, err)) {
    std::fprintf(stderr, "%s: --serve-socket: %s\n", argv0, err.c_str());
    return 1;
  }
  return 0;
}

/// A run with no telemetry-printing flags goes through the same scenario
/// runner the server uses — which is exactly what makes a server response's
/// manifest byte-identical to the standalone --metrics-out artifact.
int run_plain(const cli::CliArgs& a, const char* argv0) {
  const serve::ScenarioQuery q = serve::query_from_cli(a);
  std::string err;
  const auto out =
      serve::run_scenario(q, nullptr, /*want_manifest=*/!a.metrics_out.empty(), err);
  if (out == nullptr) {
    std::fprintf(stderr, "%s: %s\n", argv0, err.c_str());
    return 2;
  }
  std::fputs(out->header.c_str(), stdout);
  std::fputs(out->table.c_str(), stdout);
  if (!a.metrics_out.empty()) {
    std::ofstream f(a.metrics_out, std::ios::binary);
    if (f) f << out->manifest_pretty;
    if (!f) {
      std::fprintf(stderr, "failed to write manifest to %s\n", a.metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string parse_error;
  const std::optional<cli::CliArgs> parsed = cli::parse_cli(argc, argv, parse_error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], parse_error.c_str());
    std::fprintf(stderr, kUsage, argv[0], argv[0]);
    return 2;
  }
  const cli::CliArgs& a = *parsed;
  if (a.help) {
    std::printf(kUsage, argv[0], argv[0]);
    return 0;
  }
  if (a.serve) return run_serve(a, argv[0]);
  if (a.trace_path.empty() && !a.counters && !a.profile && a.timeseries_path.empty() &&
      !a.dump_schedule) {
    return run_plain(a, argv[0]);
  }

  // Telemetry-printing path: whole-run sinks attach to one coupled cluster
  // (cell mode rejects these flags at parse time).
  fault::FaultSchedule schedule;
  if (!a.faults.empty()) {
    std::string err;
    const auto loaded = serve::resolve_faults(a.faults, err);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s: --faults: %s\n", argv[0], err.c_str());
      return 2;
    }
    schedule = *loaded;
  }

  const SystemConfig cfg = system_by_name(a.system);
  int nodes = 0;
  try {
    nodes = serve::resolved_nodes(cfg, a.gpus, a.nodes);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  ClusterOptions copt;
  copt.nodes = nodes;
  copt.placement = a.placement;
  copt.enable_noise = a.noise;
  copt.net_shards = a.net_shards;
  copt.seed = a.seed;
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = a.tuned ? cfg.tuned_env() : cfg.default_env;
  opt.space = a.space;
  opt.service_level = a.service_level;
  if (a.service_level != 0) {
    opt.env.ccl_ib_sl = a.service_level;
    opt.env.ucx_ib_sl = a.service_level;
  }

  // Telemetry is attached before the communicator so constructor-time traffic
  // (none today) would also be captured; off by default, zero overhead.
  std::unique_ptr<telemetry::TraceRecorder> recorder;
  std::unique_ptr<telemetry::CounterSet> counters;
  std::unique_ptr<metrics::ScheduleProfiler> profiler;
  std::unique_ptr<metrics::TimeSeries> timeseries;
  telemetry::MultiSink sinks;
  if (!a.trace_path.empty()) {
    recorder = std::make_unique<telemetry::TraceRecorder>(&cluster.graph());
    sinks.add(recorder.get());
  }
  if (a.counters) {
    counters = std::make_unique<telemetry::CounterSet>(cluster.graph());
    sinks.add(counters.get());
  }
  if (a.profile || (!a.metrics_out.empty() && !a.jobs_given)) {
    // Gated: enabled only for one representative iteration per size, so a
    // long sweep does not accumulate every warmup/measured iteration.
    profiler = std::make_unique<metrics::ScheduleProfiler>();
    profiler->set_enabled(false);
    sinks.add(profiler.get());
  }
  if (!a.timeseries_path.empty()) {
    timeseries = std::make_unique<metrics::TimeSeries>(
        cluster.graph(), microseconds(static_cast<double>(a.bucket_us)));
    sinks.add(timeseries.get());
  }
  if (recorder || counters || profiler || timeseries) cluster.set_telemetry(&sinks);

  std::unique_ptr<fault::FaultInjector> injector;
  if (!a.faults.empty()) {
    try {
      injector = std::make_unique<fault::FaultInjector>(cluster, schedule);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: --faults: %s\n", argv[0], e.what());
      return 2;
    }
  }

  auto comm = serve::make_comm(serve::mechanism_of(a.mechanism), cluster, a.gpus, opt);
  if (a.dump_schedule) {
    std::printf("# %s %s %s, %d GPUs (%d nodes): schedule dump\n", a.system.c_str(),
                a.mechanism.c_str(), a.op.c_str(), a.gpus, nodes);
    dump_schedules(*comm, a);
    return 0;
  }
  std::printf("# %s %s %s, %d GPUs (%d nodes), %s buffers, %s%s\n", a.system.c_str(),
              a.mechanism.c_str(), a.op.c_str(), a.gpus, nodes,
              a.space == MemSpace::kHost ? "host" : "gpu", a.tuned ? "tuned" : "default env",
              injector ? ", faults injected" : "");

  metrics::RunManifest manifest;
  manifest.version = metrics::build_version();
  manifest.system = a.system;
  manifest.op = a.op;
  manifest.mechanism = a.mechanism;
  manifest.placement = cli::placement_name(a.placement);
  manifest.space = a.space == MemSpace::kHost ? "host" : "device";
  manifest.gpus = a.gpus;
  manifest.nodes = nodes;
  manifest.service_level = a.service_level;
  manifest.iters = a.iters;
  manifest.tuned = a.tuned;
  manifest.seed = a.seed;
  manifest.faults = a.faults;
  manifest.harness = a.jobs_given ? "cells" : "coupled";

  std::vector<Bytes> sizes;
  std::vector<RunConfig> rcs;
  std::vector<bool> stalled;
  for (Bytes b = a.min_bytes; b <= a.max_bytes; b *= 4) {
    RunConfig rc = run_config_for(b);
    if (a.iters > 0) rc.iterations = a.iters;
    sizes.push_back(b);
    rcs.push_back(rc);
    stalled.push_back(a.op == "alltoall" && !comm->available(CollectiveOp::kAlltoall));
  }

  std::vector<Samples> samples(sizes.size());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    if (stalled[s]) continue;
    const Bytes b = sizes[s];
    samples[s] = run_iterations(
        cluster, rcs[s], [&] { return serve::run_op(*comm, a.op, b); },
        [&] { return comm->last_op_failed(); });
    if (profiler) {
      // One extra (unmeasured) iteration per size with the profiler live:
      // its spans/flows become the representative breakdown for this size.
      profiler->set_enabled(true);
      serve::run_op(*comm, a.op, b);
      profiler->set_enabled(false);
    }
  }

  Table t({"size", "iters", "fails", "median_us", "mean_us", "p95_us", "goodput_gbps"});
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const Bytes b = sizes[s];
    manifest.plans.push_back(metrics::plan_info(b, comm->plan(serve::op_of(a.op), b)));
    metrics::RunManifest::Result result;
    result.bytes = b;
    result.iterations = rcs[s].iterations;
    if (stalled[s]) {
      t.add_row({format_bytes(b), "-", "-", "stall", "stall", "stall", "-"});
      result.stalled = true;
      manifest.results.push_back(result);
      continue;
    }
    const Summary lat = samples[s].summary();
    const Summary gp = samples[s].goodput_summary(b);
    t.add_row({format_bytes(b), std::to_string(rcs[s].iterations), std::to_string(lat.failed),
               fmt(lat.median), fmt(lat.mean), fmt(lat.p95), fmt(gp.median, 1)});
    result.latency_us = lat;
    result.goodput_gbps = gp;
    manifest.results.push_back(result);
  }
  t.print(std::cout);

  if (counters) {
    counters->finalize(cluster.engine().now());
    telemetry::print_report(std::cout, *counters, cluster.engine().now());
    print_solver_stats(cluster.network().solver_stats());
  }
  if (profiler && a.profile) {
    metrics::print_profile(std::cout, profiler->build(), &cluster.graph());
  }
  if (timeseries) {
    timeseries->finalize(cluster.engine().now());
    timeseries->render_heatmap(std::cout);
    std::ofstream csv(a.timeseries_path);
    if (csv) timeseries->write_csv(csv);
    if (!csv) {
      std::fprintf(stderr, "failed to write time series to %s\n", a.timeseries_path.c_str());
      return 1;
    }
  }
  if (!a.metrics_out.empty() &&
      !metrics::write_manifest_file(a.metrics_out, manifest, profiler.get(),
                                    timeseries.get(), counters.get())) {
    std::fprintf(stderr, "failed to write manifest to %s\n", a.metrics_out.c_str());
    return 1;
  }
  if (recorder && !telemetry::write_chrome_trace_file(a.trace_path, *recorder)) {
    std::fprintf(stderr, "failed to write trace to %s\n", a.trace_path.c_str());
    return 1;
  }
  return 0;
}
