// Network-noise case study on the simulated Leonardo: measure the same
// cross-group ping-pong on the default (shared) and a non-default (empty)
// service level, and watch the tail disappear — the Sec. VI experiment a
// user would run to decide whether to set UCX_IB_SL/NCCL_IB_SL.
//
//   $ ./noise_study [iterations]
#include <cstdio>
#include <cstdlib>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/mpi/mpi_comm.hpp"
#include "gpucomm/harness/runner.hpp"
#include "gpucomm/systems/registry.hpp"

using namespace gpucomm;

namespace {

void report(const char* label, const Summary& lat, const Summary& gp) {
  std::printf("  %-16s lat mean %6.2f med %6.2f p95 %7.2f max %8.2f us | "
              "goodput mean %6.1f min %6.1f Gb/s\n",
              label, lat.mean, lat.median, lat.p95, lat.max, gp.mean, gp.min);
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 150;
  const SystemConfig cfg = leonardo_config();

  // Two nodes in different Dragonfly+ groups: every byte crosses shared
  // spine and global links carrying production traffic.
  ClusterOptions copt;
  copt.nodes = 4;
  copt.placement = Placement::kScatterGroups;
  Cluster cluster(cfg, copt);
  const auto pair_nodes = find_node_pair(cluster, NetworkDistance::kDiffGroup);
  if (!pair_nodes) {
    std::printf("no cross-group pair available\n");
    return 1;
  }
  const std::vector<int> pair{pair_nodes->first * cfg.gpus_per_node,
                              pair_nodes->second * cfg.gpus_per_node};

  std::printf("leonardo, GPUs in different Dragonfly+ groups, %d iterations\n\n", iters);

  for (const int sl : {0, 1}) {
    CommOptions opt;
    opt.env = cfg.tuned_env();
    opt.env.ucx_ib_sl = sl;
    MpiComm mpi(cluster, pair, opt);
    const Summary lat = run_iterations(cluster, RunConfig{iters, 3}, [&] {
                          return SimTime{mpi.time_pingpong(0, 1, 1).ps / 2};
                        }).summary();
    const Summary gp = run_iterations(cluster, RunConfig{iters / 3, 2}, [&] {
                         return SimTime{mpi.time_pingpong(0, 1, 1_GiB).ps / 2};
                       }).goodput_summary(1_GiB);
    char label[32];
    std::snprintf(label, sizeof label, "UCX_IB_SL=%d%s", sl, sl == 0 ? " (default)" : "");
    report(label, lat, gp);
  }

  std::printf(
      "\nService level 0 shares switch buffers with all production traffic: the\n"
      "latency tail stretches and deep goodput minima appear. A non-default\n"
      "service level behaves like a drained system — but only because nobody\n"
      "else uses it (Sec. VI-A).\n");
  return 0;
}
