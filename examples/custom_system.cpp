// Extensibility demo: derive a hypothetical system from Leonardo — double
// the NIC count so each GPU owns a 200 Gb/s port — and quantify what that
// buys a 1 GiB allreduce at 64 GPUs. This is the "what should the next
// machine look like?" question the paper's characterization enables.
//
//   $ ./custom_system
#include <cstdio>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/ccl/ccl_comm.hpp"
#include "gpucomm/scale/scale_model.hpp"
#include "gpucomm/systems/registry.hpp"

using namespace gpucomm;

namespace {

double allreduce_gbps(const SystemConfig& cfg, int nodes, Bytes buffer) {
  Cluster cluster(cfg, {.nodes = nodes});
  CommOptions opt;
  opt.env = cfg.tuned_env();
  CclComm ccl(cluster, first_n_gpus(cluster, nodes * cfg.gpus_per_node), opt);
  return goodput_gbps(buffer, ccl.time_allreduce(buffer));
}

}  // namespace

int main() {
  const Bytes buffer = 1_GiB;
  const int nodes = 16;  // 64 GPUs

  const SystemConfig base = leonardo_config();

  // Variant A: upgrade each 100 Gb/s port to a dedicated 200 Gb/s NIC.
  SystemConfig fat_nics = base;
  fat_nics.name = "leonardo-200g";
  fat_nics.nic.rate = gbps(200);
  fat_nics.nic_bw_per_gpu = gbps(200);

  // Variant B: keep the NICs, double the NVLink count per GPU pair instead.
  SystemConfig fat_nvlink = base;
  fat_nvlink.name = "leonardo-nvl8";
  // (node builders read Table I constants; the intra-node upgrade is modelled
  // by telling *CCL/MPI the pair bandwidth doubled via the channel ceiling.)
  fat_nvlink.ccl.per_channel_bw = base.ccl.per_channel_bw * 2;

  std::printf("1 GiB NCCL allreduce on %d GPUs (exact flow simulation):\n\n", nodes * 4);
  std::printf("  %-16s %8.1f Gb/s   (baseline)\n", base.name.c_str(),
              allreduce_gbps(base, nodes, buffer));
  std::printf("  %-16s %8.1f Gb/s   (2x inter-node bandwidth)\n", fat_nics.name.c_str(),
              allreduce_gbps(fat_nics, nodes, buffer));
  std::printf("  %-16s %8.1f Gb/s   (2x *CCL channel ceiling)\n", fat_nvlink.name.c_str(),
              allreduce_gbps(fat_nvlink, nodes, buffer));

  std::printf("\nAt 64 GPUs the intra-node phases still matter, so fatter NICs buy only a\n"
              "modest gain and a wider *CCL channel ceiling buys nothing (NVLink was not\n"
              "the ceiling). The bottleneck placement depends on scale and pattern\n"
              "(Sec. V) — push the same question to 1,024 GPUs and the NIC dominates:\n");

  // Cross-check with the analytic scale model at 1,024 GPUs, where no exact
  // simulation is practical.
  std::printf("\nscale model at 1024 GPUs: baseline %.1f Gb/s, 200G NICs %.1f Gb/s\n",
              allreduce_at_scale(base, Library::kCcl, buffer, 1024).goodput_gbps,
              allreduce_at_scale(fat_nics, Library::kCcl, buffer, 1024).goodput_gbps);
  return 0;
}
