// ML-training communication study — the workload class the paper's
// introduction motivates. Models one data-parallel training step of a
// transformer: backward-pass gradient buckets are allreduced as they become
// ready, and (optionally) a mixture-of-experts layer runs an alltoall.
// Reports the communication time per step for NCCL vs GPU-aware MPI on the
// chosen system and scale.
//
//   $ ./training_step [alps|leonardo|lumi] [gpus] [params_millions]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/ccl/ccl_comm.hpp"
#include "gpucomm/comm/mpi/mpi_comm.hpp"
#include "gpucomm/systems/registry.hpp"

using namespace gpucomm;

namespace {

struct StepCost {
  SimTime gradient_sync;
  SimTime moe_alltoall;
};

StepCost run_step(Communicator& comm, Bytes gradient_bytes, Bytes moe_bytes, int buckets) {
  StepCost cost{};
  const Bytes bucket = gradient_bytes / static_cast<Bytes>(buckets);
  for (int b = 0; b < buckets; ++b) cost.gradient_sync += comm.time_allreduce(bucket);
  if (moe_bytes > 0 && comm.available(CollectiveOp::kAlltoall)) {
    // Two MoE dispatoch/combine alltoalls per layer pass.
    cost.moe_alltoall = comm.time_alltoall(moe_bytes) + comm.time_alltoall(moe_bytes);
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "alps";
  const int want_gpus = argc > 2 ? std::atoi(argv[2]) : 32;
  const double params_m = argc > 3 ? std::atof(argv[3]) : 1300.0;  // 1.3B default

  const SystemConfig cfg = system_by_name(system);
  const int nodes = std::max(1, want_gpus / cfg.gpus_per_node);
  const int gpus = nodes * cfg.gpus_per_node;

  // fp16 gradients; bucketed the way DDP implementations overlap them.
  const Bytes gradient_bytes = static_cast<Bytes>(params_m * 1e6 * 2.0);
  const int buckets = 32;
  const Bytes moe_bytes = 64_MiB;  // per-layer token dispatch volume

  ClusterOptions copt;
  copt.nodes = nodes;
  copt.placement = Placement::kScatterSwitches;
  Cluster cluster(cfg, copt);
  CommOptions opt;
  opt.env = cfg.tuned_env();
  const auto ranks = first_n_gpus(cluster, gpus);

  std::printf("data-parallel step on %s, %d GPUs, %.0fM params (%.2f GiB fp16 grads)\n\n",
              cfg.name.c_str(), gpus, params_m,
              static_cast<double>(gradient_bytes) / (1 << 30));

  CclComm ccl(cluster, ranks, opt);
  MpiComm mpi(cluster, ranks, opt);
  const StepCost c_ccl = run_step(ccl, gradient_bytes, moe_bytes, buckets);
  const StepCost c_mpi = run_step(mpi, gradient_bytes, moe_bytes, buckets);

  std::printf("%-14s %16s %16s\n", "", "gradient sync", "moe alltoall x2");
  std::printf("%-14s %13.1f ms %13.1f ms\n",
              cfg.arch == NodeArch::kLumi ? "rccl" : "nccl",
              c_ccl.gradient_sync.seconds() * 1e3, c_ccl.moe_alltoall.seconds() * 1e3);
  std::printf("%-14s %13.1f ms %13.1f ms\n", "gpu-aware mpi",
              c_mpi.gradient_sync.seconds() * 1e3, c_mpi.moe_alltoall.seconds() * 1e3);

  const double speedup = c_mpi.gradient_sync.seconds() / c_ccl.gradient_sync.seconds();
  std::printf("\n*ccl syncs gradients %.1fx faster (Obs. 4/7). With a 250 ms compute\n"
              "phase, the step-time difference is %.0f%% -> the library choice is a\n"
              "first-order training-throughput decision on this machine.\n",
              speedup,
              100.0 * (c_mpi.gradient_sync.seconds() - c_ccl.gradient_sync.seconds()) /
                  (0.25 + c_ccl.gradient_sync.seconds()));
  return 0;
}
