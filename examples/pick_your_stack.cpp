// Decision helper: given a workload (operation, buffer size, GPU count),
// report which data-movement stack the simulated systems favour — the
// practical guidance the paper distills into its eight observations.
//
//   $ ./pick_your_stack [alltoall|allreduce|p2p] [bytes] [gpus]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/ccl/ccl_comm.hpp"
#include "gpucomm/comm/mpi/mpi_comm.hpp"
#include "gpucomm/comm/staging.hpp"
#include "gpucomm/systems/registry.hpp"

using namespace gpucomm;

int main(int argc, char** argv) {
  const std::string op = argc > 1 ? argv[1] : "allreduce";
  const Bytes bytes = argc > 2 ? static_cast<Bytes>(std::strtoull(argv[2], nullptr, 10))
                               : Bytes(16_MiB);
  const int want_gpus = argc > 3 ? std::atoi(argv[3]) : 16;

  std::printf("workload: %s, %s, %d GPUs\n\n", op.c_str(), format_bytes(bytes).c_str(),
              want_gpus);
  std::printf("%-10s %-14s %-14s %s\n", "system", "*ccl", "gpu-aware mpi", "recommendation");

  for (const SystemConfig& cfg : all_systems()) {
    const int nodes = std::max(1, want_gpus / cfg.gpus_per_node);
    const int gpus = nodes * cfg.gpus_per_node;
    Cluster cluster(cfg, {.nodes = nodes});
    CommOptions opt;
    opt.env = cfg.tuned_env();
    const auto ranks = first_n_gpus(cluster, gpus);
    CclComm ccl(cluster, ranks, opt);
    MpiComm mpi(cluster, ranks, opt);

    const auto run = [&](Communicator& c) -> double {
      if (op == "alltoall") {
        if (!c.available(CollectiveOp::kAlltoall)) return -1;  // *CCL stall
        return c.time_alltoall(bytes).micros();
      }
      if (op == "p2p") return c.time_pingpong(0, c.size() - 1, bytes).micros() / 2;
      return c.time_allreduce(bytes).micros();
    };

    const double t_ccl = run(ccl);
    const double t_mpi = run(mpi);
    std::string verdict;
    if (t_ccl < 0) {
      verdict = "mpi (*ccl alltoall stalls at this scale)";
    } else if (t_ccl < t_mpi * 0.95) {
      verdict = "*ccl";
    } else if (t_mpi < t_ccl * 0.95) {
      verdict = "gpu-aware mpi";
    } else {
      verdict = "either";
    }
    char ccl_buf[32], mpi_buf[32];
    if (t_ccl < 0) {
      std::snprintf(ccl_buf, sizeof ccl_buf, "stall");
    } else {
      std::snprintf(ccl_buf, sizeof ccl_buf, "%.1f us", t_ccl);
    }
    std::snprintf(mpi_buf, sizeof mpi_buf, "%.1f us", t_mpi);
    std::printf("%-10s %-14s %-14s %s\n", cfg.name.c_str(), ccl_buf, mpi_buf,
                verdict.c_str());
  }

  std::printf(
      "\n(the paper's rule of thumb: *ccl for collectives, mpi for point-to-point\n"
      " and for small collectives on LUMI — Obs. 2/4/5)\n");
  return 0;
}
