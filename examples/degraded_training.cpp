// Training through a fault — what the fault-injection subsystem is for.
// Runs the gradient sync of one data-parallel training step three times on
// the same two-node job:
//
//   healthy    no faults
//   degraded   one of node 0's NICs dead from t=0 (routing fails over,
//              surviving NICs carry the striped rings at reduced bandwidth)
//   mid-step   the same NIC dies *during* the sync: in-flight transfers are
//              killed, detected, and retried over a rerouted path, so the
//              step pays detection + backoff + recovery on top of the
//              bandwidth loss
//
//   $ ./degraded_training [alps|leonardo|lumi]
#include <cstdio>
#include <string>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/ccl/ccl_comm.hpp"
#include "gpucomm/fault/fault_injector.hpp"
#include "gpucomm/fault/fault_schedule.hpp"
#include "gpucomm/systems/registry.hpp"

using namespace gpucomm;

namespace {

SimTime gradient_sync(Cluster& cluster, const SystemConfig& cfg, Bytes gradient_bytes,
                      int buckets) {
  CommOptions opt;
  opt.env = cfg.tuned_env();
  CclComm comm(cluster, first_n_gpus(cluster, cluster.total_gpus()), opt);
  SimTime total;
  const Bytes bucket = gradient_bytes / static_cast<Bytes>(buckets);
  for (int b = 0; b < buckets; ++b) total += comm.time_allreduce(bucket);
  if (comm.last_op_failed()) std::printf("  (an allreduce exhausted its retries)\n");
  return total;
}

Cluster make_cluster(const SystemConfig& cfg) {
  ClusterOptions copt;
  copt.nodes = 2;
  copt.placement = Placement::kScatterGroups;
  copt.enable_noise = false;
  return Cluster(cfg, copt);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "leonardo";
  const SystemConfig cfg = system_by_name(system);
  const Bytes gradient_bytes = 2_GiB / 8;  // 1.3B params would be ~2.6 GB fp16
  const int buckets = 8;

  std::printf("gradient sync on %s, 2 nodes, %d buckets of %.0f MiB\n\n", cfg.name.c_str(),
              buckets, static_cast<double>(gradient_bytes / buckets) / (1 << 20));

  Cluster healthy = make_cluster(cfg);
  const SimTime t_healthy = gradient_sync(healthy, cfg, gradient_bytes, buckets);

  // A NIC dead before the job starts: pure bandwidth loss, no recovery cost.
  Cluster degraded = make_cluster(cfg);
  fault::FaultEvent nic_dead;
  nic_dead.kind = fault::FaultKind::kNicFail;
  nic_dead.time = SimTime::zero();
  nic_dead.dev_a = degraded.node(0).nics[0];
  fault::FaultInjector inj_degraded(degraded, fault::FaultSchedule{{nic_dead}});
  const SimTime t_degraded = gradient_sync(degraded, cfg, gradient_bytes, buckets);

  // The same NIC dying mid-sync: in-flight flows are interrupted and must be
  // detected and re-posted over the surviving NICs.
  Cluster midstep = make_cluster(cfg);
  fault::FaultEvent nic_dies = nic_dead;
  nic_dies.dev_a = midstep.node(0).nics[0];
  nic_dies.time = SimTime{t_healthy.ps / 4};
  fault::FaultInjector inj_midstep(midstep, fault::FaultSchedule{{nic_dies}});
  const SimTime t_midstep = gradient_sync(midstep, cfg, gradient_bytes, buckets);

  std::printf("%-28s %10.2f ms\n", "healthy", t_healthy.seconds() * 1e3);
  std::printf("%-28s %10.2f ms  (%.2fx)\n", "nic dead from t=0",
              t_degraded.seconds() * 1e3, t_degraded.seconds() / t_healthy.seconds());
  std::printf("%-28s %10.2f ms  (%.2fx)\n", "nic dies mid-sync",
              t_midstep.seconds() * 1e3, t_midstep.seconds() / t_healthy.seconds());
  std::printf("\nthe mid-sync run lands between healthy and fully degraded — the\n"
              "early buckets ran at full bandwidth — but above the time-weighted\n"
              "blend: every transfer in flight at the failure pays detection\n"
              "timeout, backoff, and a re-post over the rerouted path on top of\n"
              "the bandwidth loss.\n");
  return 0;
}
