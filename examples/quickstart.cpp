// Quickstart: build a simulated supercomputer, run a ping-pong and an
// allreduce with two communication stacks, and print what the paper's
// benchmark would have measured.
//
//   $ ./quickstart [alps|leonardo|lumi]
#include <cstdio>
#include <string>

#include "gpucomm/cluster/cluster.hpp"
#include "gpucomm/cluster/placement.hpp"
#include "gpucomm/comm/ccl/ccl_comm.hpp"
#include "gpucomm/comm/mpi/mpi_comm.hpp"
#include "gpucomm/systems/registry.hpp"

using namespace gpucomm;

int main(int argc, char** argv) {
  const std::string system = argc > 1 ? argv[1] : "leonardo";
  const SystemConfig cfg = system_by_name(system);

  // A two-node slice of the machine. Nodes are wired into the real fabric
  // topology (Dragonfly or Dragonfly+); Leonardo also gets its production
  // network-noise field.
  Cluster cluster(cfg, {.nodes = 2});
  std::printf("system: %s (%d GPUs/node, %s fabric)\n", cfg.name.c_str(), cfg.gpus_per_node,
              cfg.fabric.kind == FabricKind::kDragonfly ? "dragonfly" : "dragonfly+");

  // One rank per GPU, the paper's tuned environment (Sec. III-B).
  CommOptions opt;
  opt.env = cfg.tuned_env();
  const std::vector<int> gpus = first_n_gpus(cluster, 2 * cfg.gpus_per_node);

  MpiComm mpi(cluster, gpus, opt);
  CclComm ccl(cluster, gpus, opt);

  // Intra-node ping-pong, 1 MiB (ranks 0 and 1 share a node).
  const Bytes small = 1_MiB;
  const SimTime t_mpi = mpi.time_pingpong(0, 1, small);
  const SimTime t_ccl = ccl.time_pingpong(0, 1, small);
  std::printf("\nintra-node 1 MiB ping-pong (one way):\n");
  std::printf("  gpu-aware mpi : %8.2f us  (%7.1f Gb/s)\n", t_mpi.micros() / 2,
              goodput_gbps(small, SimTime{t_mpi.ps / 2}));
  std::printf("  %s          : %8.2f us  (%7.1f Gb/s)\n",
              cfg.arch == NodeArch::kLumi ? "rccl" : "nccl", t_ccl.micros() / 2,
              goodput_gbps(small, SimTime{t_ccl.ps / 2}));

  // Inter-node ping-pong between rank 0 and the first rank of node 1.
  const SimTime x_mpi = mpi.time_pingpong(0, cfg.gpus_per_node, small);
  const SimTime x_ccl = ccl.time_pingpong(0, cfg.gpus_per_node, small);
  std::printf("\ninter-node 1 MiB ping-pong (one way):\n");
  std::printf("  gpu-aware mpi : %8.2f us\n", x_mpi.micros() / 2);
  std::printf("  *ccl          : %8.2f us   <- proxy/launch overhead, Obs. 5\n",
              x_ccl.micros() / 2);

  // A 64 MiB allreduce over all 2 nodes.
  const Bytes big = 64_MiB;
  const SimTime ar_mpi = mpi.time_allreduce(big);
  const SimTime ar_ccl = ccl.time_allreduce(big);
  std::printf("\n64 MiB allreduce over %d GPUs:\n", static_cast<int>(gpus.size()));
  std::printf("  gpu-aware mpi : %8.2f ms (%7.1f Gb/s)\n", ar_mpi.seconds() * 1e3,
              goodput_gbps(big, ar_mpi));
  std::printf("  *ccl          : %8.2f ms (%7.1f Gb/s)  <- wins collectives, Obs. 4/7\n",
              ar_ccl.seconds() * 1e3, goodput_gbps(big, ar_ccl));
  return 0;
}
