// Telemetry walkthrough: run the same 4 MiB allreduce on Leonardo through
// *CCL and GPU-aware MPI with tracing + counters attached, write one
// Perfetto-loadable Chrome trace per mechanism, and compare where the bytes
// actually flowed. The per-link table makes Obs. 2's point directly: the
// NIC wire saturates while the NVLink mesh idles.
//
//   $ ./trace_study
//   $ # then open trace_ccl.json / trace_mpi.json in https://ui.perfetto.dev
#include <cstdio>
#include <iostream>
#include <memory>

#include "gpucomm/gpucomm.hpp"

using namespace gpucomm;

namespace {

void study(const char* name, Mechanism mech) {
  const SystemConfig cfg = leonardo_config();
  Cluster cluster(cfg, {.nodes = 4});
  CommOptions opt;
  opt.env = cfg.tuned_env();

  // Both sinks observe the same token stream through one MultiSink.
  telemetry::TraceRecorder recorder(&cluster.graph());
  telemetry::CounterSet counters(cluster.graph());
  telemetry::MultiSink sinks;
  sinks.add(&recorder);
  sinks.add(&counters);
  cluster.set_telemetry(&sinks);

  std::unique_ptr<Communicator> comm;
  if (mech == Mechanism::kCcl) {
    comm = std::make_unique<CclComm>(cluster, first_n_gpus(cluster, 16), opt);
  } else {
    comm = std::make_unique<MpiComm>(cluster, first_n_gpus(cluster, 16), opt);
  }

  const Bytes buffer = 4_MiB;
  const SimTime t = comm->time_allreduce(buffer);
  std::printf("%s allreduce of %s on 16 GPUs: %s (%.1f Gb/s)\n", name,
              format_bytes(buffer).c_str(), to_string(t).c_str(),
              goodput_gbps(buffer, t));

  counters.finalize(cluster.engine().now());
  std::printf("%llu flows traced, %.1f MiB moved across links\n",
              static_cast<unsigned long long>(recorder.flows().size()),
              static_cast<double>(counters.total_link_bytes()) / (1024.0 * 1024.0));
  telemetry::print_report(std::cout, counters, cluster.engine().now());

  const std::string path = std::string("trace_") + name + ".json";
  if (telemetry::write_chrome_trace_file(path, recorder)) {
    std::printf("wrote %s\n\n", path.c_str());
  }
}

}  // namespace

int main() {
  study("ccl", Mechanism::kCcl);
  study("mpi", Mechanism::kMpi);
  return 0;
}
